"""Command-line interface: regenerate any of the paper's experiments.

Usage (after ``pip install -e .``)::

    repro-faulty-mem fig2                 # Pcell vs VDD and classical yield
    repro-faulty-mem fig4                 # error magnitude per faulty bit position
    repro-faulty-mem fig5 --samples 100   # MSE CDF / quality-aware yield
    repro-faulty-mem fig6                 # read-path overhead comparison
    repro-faulty-mem fig7 --benchmark knn # application quality CDF
    repro-faulty-mem table1               # benchmark inventory
    repro-faulty-mem dse run --spec g.json     # design-space sweep table
    repro-faulty-mem dse pareto --spec g.json  # energy/quality frontier
    repro-faulty-mem dse report --spec g.json  # iso-quality summary
    repro-faulty-mem store query --store results/   # inspect a result store
    repro-faulty-mem store gc --store results/      # compact it
    repro-faulty-mem store export --store results/ --output r.jsonl

Every command prints a plain-text table to stdout; the benchmark harness under
``benchmarks/`` reuses the same analysis functions.  The two Monte-Carlo sweep
commands (``fig5``, ``fig7``) and ``dse run`` share one option set:
``--workers`` (process fan-out, bit-identical results for any count),
``--sampling legacy|seeded`` (shared-generator replay versus per-die seed
children), ``--checkpoint`` (resumable JSON results cache),
``--scenario`` (fault-scenario pipeline: ``iid-pcell`` default, ``aged``,
``clustered``, ``repaired``, ``transient``, with ``name,key=value``
parameters), ``--access-trace`` (read passes replayed per load for
transient-tier scenarios), and
``--adaptive`` / ``--target-ci`` / ``--max-samples`` (confidence-driven
Monte-Carlo budget: stop sampling once the yield estimate's confidence
half-width reaches the target, instead of burning the full fixed budget).
Adaptive runs append one ``adaptive budget:`` summary line after the table;
fixed-budget output is byte-identical to earlier releases.

The sweep commands also share ``--store`` (persistent result store: warm
re-runs are served from disk bit-identically with zero new die evaluations;
``store:`` status lines go to stderr so stdout never changes), and the
``store`` command group inspects and maintains such a store.

``--executor tcp --connect HOST:PORT`` turns any sweep command into a
distributed coordinator: it binds the address and serves shards to workers
started (on any trusted host) with ``python -m repro.sim.worker --connect
HOST:PORT``.  Executor status lines go to stderr too, so stdout stays
byte-identical across inline, process-pool, and TCP execution -- see the
README's "Distributed sweeps" section.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.scenarios import SCENARIO_NAMES, ScenarioSpec

from repro.analysis.figures import (
    figure2_pcell_vs_vdd,
    figure4_error_magnitude,
    figure5_mse_cdf,
    figure6_overhead,
    figure7_quality,
)
from repro.analysis.tables import table1_applications
from repro.dse import (
    DesignSpaceExplorer,
    DseResult,
    ExperimentSpec,
    OptimizerSpec,
    ParetoOptimizer,
)
from repro.sim.engine import AdaptiveBudget, AdaptiveBudgetReport
from repro.sim.experiment import standard_benchmarks

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _scenario_param_value(text: str) -> object:
    """Parse a scenario parameter value: int, then float, then plain string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _parse_scenario(text: str) -> ScenarioSpec:
    """Parse a ``--scenario`` flag: ``name[,key=value,...]``.

    Examples: ``aged``, ``aged,years=5,temperature_c=85``,
    ``clustered,cluster_size=8``.  The name and parameters are validated by
    building the scenario immediately, so typos fail before any sweep runs.
    """
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if not parts:
        raise argparse.ArgumentTypeError("scenario name must not be empty")
    name, params = parts[0], []
    if "=" in name:
        raise argparse.ArgumentTypeError(
            f"scenario name {name!r} must not contain '='; parameters follow "
            f"the name after a comma (e.g. 'aged,years=5')"
        )
    for part in parts[1:]:
        key, separator, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not separator:
            raise argparse.ArgumentTypeError(
                f"scenario parameter {part!r} must have the form key=value"
            )
        if not key:
            raise argparse.ArgumentTypeError(
                f"scenario parameter {part!r} is missing a key before '='"
            )
        if "=" in value:
            raise argparse.ArgumentTypeError(
                f"scenario parameter {part!r} has more than one '='; "
                f"values must not contain '='"
            )
        if not value:
            raise argparse.ArgumentTypeError(
                f"scenario parameter {part!r} is missing a value after '='"
            )
        params.append((key, _scenario_param_value(value)))
    try:
        spec = ScenarioSpec(name=name, params=tuple(params))
        spec.build()
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    return spec


def _add_sweep_options(
    parser: argparse.ArgumentParser,
    *,
    include_sampling: bool = True,
    checkpoint_help: Optional[str] = None,
) -> None:
    """The option set shared by every Monte-Carlo sweep command.

    ``fig5``, ``fig7``, and ``dse run`` all expose the same ``--workers`` /
    ``--sampling`` / ``--checkpoint`` surface (``dse`` omits ``--sampling``:
    the design-space grid always uses the engine's seeded per-die sampling,
    whose master seed lives in the spec file).
    """
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="processes for the Monte-Carlo sweep (results are bit-identical "
        "for any count)",
    )
    if include_sampling:
        parser.add_argument(
            "--sampling",
            choices=["legacy", "seeded"],
            default=None,
            help="fault-map sampling: 'legacy' replays the shared-generator "
            "stream of the serial implementation; 'seeded' derives one "
            "seed-sequence child per die from --seed (the parallel engine's "
            "native mode).  Default: legacy, or seeded when --adaptive is "
            "given (adaptive budgets cannot pre-draw the population)",
        )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help=checkpoint_help
        or "JSON results cache updated after every completed shard; "
        "re-running with the same configuration resumes from it",
    )
    parser.add_argument(
        "--scenario",
        type=_parse_scenario,
        default=None,
        metavar="NAME[,KEY=VALUE...]",
        help="fault-scenario pipeline the die population is drawn through: "
        f"one of {', '.join(SCENARIO_NAMES)}, with optional parameters "
        "(e.g. 'aged,years=5' or 'clustered,cluster_size=8'); default: the "
        "i.i.d. iid-pcell scenario (for dse commands this overrides the "
        "spec file's scenario section)",
    )
    parser.add_argument(
        "--access-trace",
        type=_positive_int,
        default=1,
        metavar="PASSES",
        help="read passes replayed per tensor load for scenarios with a "
        "transient tier (e.g. 'transient,disturb=1e-6,scrub_interval=4'): "
        "read-disturb accumulates across passes and scrubbing fires "
        "periodically, while soft errors strike only the final observed "
        "read; default 1, and values above 1 require a transient scenario",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="confidence-driven Monte-Carlo budget: sample in "
        "Neyman-allocated rounds and stop once the yield estimate's "
        "confidence half-width reaches --target-ci, instead of burning the "
        "full fixed budget; never spends more dies than the fixed budget "
        "unless --max-samples raises the cap",
    )
    parser.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="HALF_WIDTH",
        help="target confidence half-width of the adaptive stopping rule "
        "(default 0.02; requires --adaptive)",
    )
    parser.add_argument(
        "--max-samples",
        type=_positive_int,
        default=None,
        metavar="DIES",
        help="total die cap of the adaptive budget (default: the "
        "equivalent fixed budget; requires --adaptive)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store directory (created if missing): "
        "sweeps whose full configuration hash is already stored are served "
        "from it bit-identically with zero new die evaluations, and "
        "computed sweeps are recorded into it; status lines go to stderr, "
        "so stdout stays byte-identical with and without a warm store",
    )
    parser.add_argument(
        "--executor",
        choices=["local", "tcp"],
        default="local",
        help="shard executor tier: 'local' evaluates shards in a process "
        "pool of --workers (in-process when --workers 1); 'tcp' binds the "
        "--connect address and serves shards to remote workers started "
        "with 'python -m repro.sim.worker --connect HOST:PORT'.  Results "
        "are bit-identical across executors and worker counts",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="rendezvous address of the tcp executor (the coordinator "
        "binds it; workers dial it; requires --executor tcp)",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="shared secret for the tcp handshake; workers must pass the "
        "same --token (guards against accidental connections, not "
        "adversaries; requires --executor tcp)",
    )


def _open_store(args: argparse.Namespace):
    """The ResultStore named by ``--store`` (``None`` when not given)."""
    if getattr(args, "store", None) is None:
        return None
    from repro.store import ResultStore

    return ResultStore(args.store)


def _print_store_events(store) -> None:
    """One stderr status line per store interaction of this command.

    stderr, not stdout: the table a warm re-run prints must stay
    byte-identical to the cold run's.
    """
    for event in store.session_events:
        key = event["key"][:16]
        if event["type"] == "put":
            evaluated = event["meta"].get("evaluated_dies", "?")
            print(
                f"store: recorded {key} ({evaluated} dies evaluated)",
                file=sys.stderr,
            )
        elif event["type"] == "hit":
            print(
                f"store: served {key} from cache (0 dies evaluated)",
                file=sys.stderr,
            )


def _resolve_executor(args: argparse.Namespace):
    """The ExecutorSpec requested by ``--executor``/``--connect``.

    Returns ``None`` for the default local tier (the engine's own default),
    so fixed-budget output stays byte-identical to earlier releases.  The
    tcp note goes to stderr: stdout must not depend on the executor.
    """
    executor = getattr(args, "executor", "local")
    connect = getattr(args, "connect", None)
    token = getattr(args, "token", None)
    if executor != "tcp":
        if connect is not None:
            raise SystemExit("--connect requires --executor tcp")
        if token is not None:
            raise SystemExit("--token requires --executor tcp")
        return None
    if connect is None:
        raise SystemExit(
            "--executor tcp needs a rendezvous address: pass --connect "
            "HOST:PORT and start workers with "
            "'python -m repro.sim.worker --connect HOST:PORT'"
        )
    from repro.sim.executor import ExecutorSpec
    from repro.sim.wire import parse_address

    try:
        host, port = parse_address(connect)
    except ValueError as error:
        raise SystemExit(f"--connect: {error}") from error
    print(
        f"executor: tcp coordinator on {host}:{port} "
        f"(waiting for workers)",
        file=sys.stderr,
    )
    return ExecutorSpec(kind="tcp", host=host, port=port, token=token)


def _resolve_adaptive(args: argparse.Namespace) -> Optional[AdaptiveBudget]:
    """The adaptive budget requested by the flags (``None`` = fixed mode)."""
    if not args.adaptive:
        if args.target_ci is not None:
            raise SystemExit("--target-ci requires --adaptive")
        if args.max_samples is not None:
            raise SystemExit("--max-samples requires --adaptive")
        return None
    kwargs = {"max_total_samples": args.max_samples}
    if args.target_ci is not None:
        kwargs["target_ci"] = args.target_ci
    return AdaptiveBudget(**kwargs)


def _resolve_sampling(args: argparse.Namespace) -> str:
    """The effective sampling mode (adaptive runs default to seeded)."""
    if args.sampling is None:
        return "seeded" if args.adaptive else "legacy"
    if args.adaptive and args.sampling == "legacy":
        raise SystemExit(
            "--adaptive requires --sampling seeded: the adaptive controller "
            "decides the die count as it runs, so the population cannot be "
            "pre-drawn from the legacy shared generator"
        )
    return args.sampling


def _scenario_has_transient(args: argparse.Namespace) -> bool:
    """Whether ``--scenario`` names a pipeline with a per-read transient tier."""
    return args.scenario is not None and args.scenario.build().transient is not None


def _check_access_trace(args: argparse.Namespace) -> None:
    """Fail fast when ``--access-trace`` is raised without a transient tier.

    The engine would reject the configuration too, but with a traceback; the
    CLI turns it into the usual one-line exit.
    """
    if args.access_trace != 1 and not _scenario_has_transient(args):
        raise SystemExit(
            "--access-trace requires a scenario with a transient tier "
            "(e.g. --scenario transient,ser=1e-5): static faults do not "
            "change between read passes"
        )


def _print_adaptive_summary(report: AdaptiveBudgetReport) -> None:
    """One deterministic summary line for adaptive runs (after the table)."""
    status = "reached" if report.reached else "NOT reached (die cap hit)"
    print(
        f"adaptive budget: {report.total_dies} dies in {report.rounds} "
        f"rounds (cap {report.max_total_dies}); target CI "
        f"+/-{report.target_ci:g} {status}: achieved "
        f"+/-{report.achieved_half_width:.4g} at "
        f"{report.confidence:.0%} confidence, yield threshold "
        f"{report.threshold:g}"
    )


def _print_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    widths = [len(h) for h in headers]
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted = [
            f"{value:.4g}" if isinstance(value, float) else str(value) for value in row
        ]
        formatted_rows.append(formatted)
        widths = [max(w, len(cell)) for w, cell in zip(widths, formatted)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for formatted in formatted_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(formatted, widths)))


def _cmd_fig2(args: argparse.Namespace) -> int:
    data = figure2_pcell_vs_vdd()
    rows = [
        (f"{v:.3f}", p, y)
        for v, p, y in zip(data["vdd"], data["p_cell"], data["classical_yield"])
    ]
    print("Figure 2: 6T bit-cell failure probability under VDD scaling (28 nm model)")
    _print_table(["VDD [V]", "Pcell", "zero-failure yield (16kB)"], rows)
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    series = figure4_error_magnitude(word_width=args.word_width)
    positions = list(range(args.word_width))
    headers = ["bit position"] + list(series.keys())
    rows = []
    for position in positions:
        rows.append(
            [position] + [float(series[name][position]) for name in series]
        )
    print("Figure 4: worst-case error magnitude per faulty bit position")
    _print_table(headers, rows)
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    if _scenario_has_transient(args):
        raise SystemExit(
            f"--scenario {args.scenario.name} is not supported by fig5: the "
            "analytical MSE evaluation cannot model per-read transient "
            "faults; run it through fig7 (the quality sweep) instead"
        )
    _check_access_trace(args)
    sampling = _resolve_sampling(args)
    adaptive = _resolve_adaptive(args)
    executor = _resolve_executor(args)
    reports: List[AdaptiveBudgetReport] = []
    store = _open_store(args)
    try:
        results = figure5_mse_cdf(
            p_cell=args.p_cell,
            samples_per_count=args.samples,
            rng=np.random.default_rng(args.seed),
            workers=args.workers,
            sampling=sampling,
            master_seed=args.seed if sampling == "seeded" else None,
            checkpoint=args.checkpoint,
            scenario=args.scenario,
            adaptive=adaptive,
            report_out=reports,
            store=store,
            access_trace=args.access_trace,
            executor=executor,
        )
    finally:
        if store is not None:
            _print_store_events(store)
            store.close()
    scenario_note = (
        f", scenario {args.scenario.name}" if args.scenario is not None else ""
    )
    print(
        f"Figure 5: quality-aware yield for a 16kB memory at "
        f"Pcell={args.p_cell:g}{scenario_note}"
    )
    mse_targets = [1e0, 1e2, 1e4, 1e6, 1e8]
    headers = ["scheme"] + [f"yield@MSE<={t:g}" for t in mse_targets] + [
        "MSE@99.99% yield"
    ]
    rows = []
    for name, dist in results.items():
        rows.append(
            [name]
            + [dist.yield_at_mse(t) for t in mse_targets]
            + [dist.mse_at_yield(0.9999)]
        )
    _print_table(headers, rows)
    for report in reports:
        _print_adaptive_summary(report)
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    report = figure6_overhead(lut_realisation=args.lut)
    relative = report.relative_to_baseline()
    print(
        "Figure 6: read-path overhead relative to "
        f"{report.baseline} (LUT realisation: {args.lut})"
    )
    headers = ["scheme", "read power", "read delay", "area"]
    rows = [
        [name, rel["read_power"], rel["read_delay"], rel["area"]]
        for name, rel in relative.items()
    ]
    _print_table(headers, rows)
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    benchmarks = standard_benchmarks(scale=args.scale, seed=args.seed)
    if args.benchmark not in benchmarks:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    benchmark = benchmarks[args.benchmark]
    _check_access_trace(args)
    sampling = _resolve_sampling(args)
    if _scenario_has_transient(args) and sampling == "legacy":
        raise SystemExit(
            f"--scenario {args.scenario.name} requires --sampling seeded: "
            "per-read corruption replays from each die's seed-sequence "
            "child, which the legacy shared-generator population does not "
            "carry"
        )
    adaptive = _resolve_adaptive(args)
    executor = _resolve_executor(args)
    reports: List[AdaptiveBudgetReport] = []
    store = _open_store(args)
    try:
        results = figure7_quality(
            benchmark,
            p_cell=args.p_cell,
            samples_per_count=args.samples,
            n_count_points=args.count_points,
            rng=np.random.default_rng(args.seed),
            workers=args.workers,
            master_seed=args.seed if sampling == "seeded" else None,
            checkpoint=args.checkpoint,
            scenario=args.scenario,
            adaptive=adaptive,
            report_out=reports,
            store=store,
            access_trace=args.access_trace,
            executor=executor,
        )
    finally:
        if store is not None:
            _print_store_events(store)
            store.close()
    scenario_note = (
        f", scenario {args.scenario.name}" if args.scenario is not None else ""
    )
    print(
        f"Figure 7 ({args.benchmark}): normalised {benchmark.metric_name} "
        f"under memory failures at Pcell={args.p_cell:g}{scenario_note}"
    )
    quality_targets = [0.5, 0.8, 0.9, 0.95, 0.99]
    headers = ["scheme"] + [f"yield@Q>={q}" for q in quality_targets] + ["median Q"]
    rows = []
    for name, dist in results.items():
        rows.append(
            [name]
            + [dist.yield_at_quality(q) for q in quality_targets]
            + [dist.median_quality()]
        )
    _print_table(headers, rows)
    for report in reports:
        _print_adaptive_summary(report)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_applications(scale=args.scale)
    print("Table 1: evaluation applications and datasets")
    _print_table(
        ["class", "algorithm", "dataset", "metric", "train", "test", "clean quality"],
        [
            [
                r["class"],
                r["algorithm"],
                r["dataset"],
                r["metric"],
                r["train_samples"],
                r["test_samples"],
                float(r["clean_quality"]),
            ]
            for r in rows
        ],
    )
    return 0


# --------------------------------------------------------------------------- #
# Design-space exploration commands
# --------------------------------------------------------------------------- #
_DSE_TABLE_COLUMNS = (
    "benchmark",
    "scheme",
    "vdd",
    "p_cell",
    "energy_saving",
    "total_read_energy_fj",
    "leakage_power_nw",
    "overhead_area_um2",
    "quality_at_yield",
    "median_quality",
    "yield_q90",
)

_DSE_TABLE_HEADERS = (
    "benchmark",
    "scheme",
    "VDD [V]",
    "Pcell",
    "E saving",
    "read E [fJ]",
    "leakage [nW]",
    "area ovh [um2]",
    "Q@yield",
    "median Q",
    "yield@Q>=0.9",
)


def _print_dse_rows(rows: Sequence[dict]) -> None:
    _print_table(
        _DSE_TABLE_HEADERS,
        [[row[column] for column in _DSE_TABLE_COLUMNS] for row in rows],
    )


def _dse_result(args: argparse.Namespace) -> DseResult:
    """The result table a dse subcommand operates on (run the spec, or load)."""
    if getattr(args, "table", None) is not None:
        if args.scenario is not None:
            raise SystemExit(
                "--scenario cannot be applied to a previously written "
                "--table; re-run 'dse run --spec ... --scenario ...'"
            )
        if args.adaptive or args.target_ci is not None or args.max_samples is not None:
            raise SystemExit(
                "--adaptive cannot be applied to a previously written "
                "--table; re-run 'dse run --spec ... --adaptive'"
            )
        if args.store is not None:
            raise SystemExit(
                "--store cannot be applied to a previously written --table "
                "(the table bypasses the sweep); re-run "
                "'dse run --spec ... --store ...'"
            )
        if args.access_trace != 1:
            raise SystemExit(
                "--access-trace cannot be applied to a previously written "
                "--table; re-run 'dse run --spec ... --access-trace ...'"
            )
        if (
            args.executor != "local"
            or args.connect is not None
            or args.token is not None
        ):
            raise SystemExit(
                "--executor/--connect cannot be applied to a previously "
                "written --table (the table bypasses the sweep); re-run "
                "'dse run --spec ... --executor tcp --connect ...'"
            )
        return DseResult.load(args.table)
    if args.spec is None:
        raise SystemExit("either --spec or --table is required")
    spec = ExperimentSpec.from_file(args.spec)
    if args.scenario is not None:
        spec = replace(spec, scenario=args.scenario)
    if args.access_trace != 1:
        # replace() re-runs __post_init__, so a spec whose scenario lacks a
        # transient tier fails eagerly here rather than mid-sweep.
        try:
            spec = replace(spec, access_trace=args.access_trace)
        except ValueError as error:
            raise SystemExit(f"--access-trace: {error}") from error
    if args.adaptive or spec.budget.mode == "adaptive":
        # The flags overlay the spec's budget section; values the user did
        # not pass stay as the spec wrote them (a spec's target_ci must not
        # silently reset to the default just because --adaptive was given).
        overrides: dict = {"mode": "adaptive"}
        if args.target_ci is not None:
            overrides["target_ci"] = args.target_ci
        if args.max_samples is not None:
            overrides["max_samples"] = args.max_samples
        spec = replace(spec, budget=replace(spec.budget, **overrides))
    elif args.target_ci is not None or args.max_samples is not None:
        raise SystemExit(
            "--target-ci/--max-samples require --adaptive (or an adaptive "
            "budget section in the spec file)"
        )
    store = _open_store(args)
    try:
        explorer = DesignSpaceExplorer(
            spec,
            workers=args.workers,
            checkpoint_dir=args.checkpoint,
            store=store,
            executor=_resolve_executor(args),
        )
        return explorer.run()
    finally:
        if store is not None:
            _print_store_events(store)
            store.close()


def _cmd_dse_run(args: argparse.Namespace) -> int:
    result = _dse_result(args)
    spec = result.spec
    print(
        f"Design-space sweep: {len(spec.operating_points())} operating points x "
        f"{len(spec.scheme_grid.specs)} schemes x "
        f"{len(spec.benchmarks.names)} benchmarks "
        f"(scenario {spec.scenario.name}, "
        f"quality at yield target {spec.quality_yield_target:g})"
    )
    _print_dse_rows(result.rows)
    if args.output is not None:
        result.save(args.output)
        print(f"wrote {len(result.rows)} rows to {args.output}")
    return 0


def _cmd_dse_pareto(args: argparse.Namespace) -> int:
    result = _dse_result(args)
    frontier = result.pareto(benchmark=args.benchmark)
    scope = args.benchmark if args.benchmark is not None else "all benchmarks"
    print(
        f"Pareto frontier (total read energy vs. quality at "
        f"{result.spec.quality_yield_target:g} yield, {scope}): "
        f"{len(frontier)} of {len(result.rows)} points"
    )
    _print_dse_rows(frontier)
    return 0


def _cmd_dse_report(args: argparse.Namespace) -> int:
    result = _dse_result(args)
    spec = result.spec
    print(
        f"Design-space report: {len(result.rows)} grid points, "
        f"benchmarks: {', '.join(result.benchmarks())}"
    )
    print()
    print(
        f"Pareto-optimal operating points (energy vs. quality at "
        f"{spec.quality_yield_target:g} yield):"
    )
    _print_dse_rows(result.pareto())
    for target in (0.90, 0.95, 0.99):
        rows = result.energy_at_iso_quality(target)
        print()
        print(
            f"Cheapest operating point per scheme with quality@yield >= "
            f"{target:g} ({len(rows)} schemes qualify):"
        )
        if rows:
            _print_dse_rows(rows)
    return 0


def _cmd_dse_optimize(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_file(args.spec)
    base = spec.optimizer if spec.optimizer is not None else OptimizerSpec()
    overrides: dict = {}
    if args.rungs is not None:
        overrides["rungs"] = args.rungs
    if args.eta is not None:
        overrides["eta"] = args.eta
    if args.frontier_slack is not None:
        overrides["frontier_slack"] = args.frontier_slack
    if args.rung0_dies is not None:
        overrides["rung0_dies"] = args.rung0_dies
    if args.target_ci is not None:
        overrides["target_ci"] = args.target_ci
    try:
        optimizer = replace(base, **overrides) if overrides else base
    except ValueError as error:
        raise SystemExit(f"invalid optimizer parameters: {error}") from error
    store = _open_store(args)
    try:
        result = ParetoOptimizer(
            spec,
            optimizer=optimizer,
            workers=args.workers,
            checkpoint_dir=args.checkpoint,
            store=store,
            executor=_resolve_executor(args),
        ).run()
    finally:
        if store is not None:
            _print_store_events(store)
            store.close()
    print(
        f"Budgeted Pareto optimization: {optimizer.rungs} rungs "
        f"(eta {optimizer.eta:g}, target CI {optimizer.target_ci:g}, "
        f"frontier slack {optimizer.frontier_slack:g})"
    )
    print(
        f"dies: {result.total_dies} "
        f"({result.evaluated_dies} evaluated this run, "
        f"{result.store_hits} rungs served from the store); "
        f"exhaustive sweep: {result.exhaustive_dies} dies "
        f"({result.savings_ratio():.1f}x saving)"
    )
    frontier = result.frontier()
    print(
        f"recovered frontier: {len(frontier)} of {len(result.rows)} grid "
        f"points survive (quality at {spec.quality_yield_target:g} yield)"
    )
    _print_dse_rows(frontier)
    if result.prune_log:
        print()
        print(f"pruned rows ({len(result.prune_log)}):")
        for event in result.prune_log:
            print(
                f"  rung {event.rung}: {event.scheme}@{event.vdd:g}V "
                f"(q <= {event.quality_hi:.4f}) dominated by "
                f"{event.by_scheme}@{event.by_vdd:g}V "
                f"(q >= {event.by_quality_lo:.4f} at <= energy)"
            )
    if args.output is not None:
        result.save(args.output)
        print(f"wrote {len(result.rows)} rows to {args.output}")
    return 0


# --------------------------------------------------------------------------- #
# Result-store maintenance commands
# --------------------------------------------------------------------------- #
def _existing_store(path: str):
    """Open a store that must already exist (maintenance commands never
    create one as a side effect of a typo'd path)."""
    from repro.store import ResultStore, StoreError

    try:
        return ResultStore(path, create=False)
    except StoreError as error:
        raise SystemExit(str(error)) from error


def _cmd_store_query(args: argparse.Namespace) -> int:
    with _existing_store(args.store) as store:
        records = store.query(kind=args.kind, key_prefix=args.key)
        if args.count:
            print(len(records))
            return 0
        print(
            f"Result store {store.root}: {len(records)} live record(s)"
            + (f" of kind {args.kind}" if args.kind else "")
            + (f" with key prefix {args.key}" if args.key else "")
        )
        rows = [
            [
                record["key"][:16],
                record["kind"],
                record["seq"],
                record["meta"].get("benchmark") or "-",
                record["meta"].get("p_cell", "-"),
                record["meta"].get("evaluated_dies", "-"),
                record["meta"].get("total_dies", "-"),
            ]
            for record in records
        ]
        _print_table(
            ["key", "kind", "seq", "benchmark", "p_cell", "evaluated", "dies"],
            rows,
        )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    with _existing_store(args.store) as store:
        summary = store.gc()
    print(
        f"store gc: kept {summary['kept']} record(s), dropped "
        f"{summary['dropped']} superseded, removed "
        f"{summary['segments_removed']} segment(s)"
    )
    return 0


def _cmd_store_export(args: argparse.Namespace) -> int:
    from repro.store import StoreError

    with _existing_store(args.store) as store:
        try:
            count = store.export(args.output, format=args.format)
        except StoreError as error:
            raise SystemExit(str(error)) from error
    print(f"store export: wrote {count} record(s) to {args.output} ({args.format})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-faulty-mem",
        description="Regenerate the experiments of the DAC'15 bit-shuffling paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help="Pcell vs VDD and classical yield").set_defaults(
        func=_cmd_fig2
    )

    p4 = sub.add_parser("fig4", help="error magnitude per faulty bit position")
    p4.add_argument("--word-width", type=int, default=32)
    p4.set_defaults(func=_cmd_fig4)

    p5 = sub.add_parser("fig5", help="MSE CDF / quality-aware yield")
    p5.add_argument("--p-cell", type=float, default=5e-6)
    p5.add_argument("--samples", type=int, default=200)
    p5.add_argument("--seed", type=int, default=2015)
    _add_sweep_options(p5)
    p5.set_defaults(func=_cmd_fig5)

    p6 = sub.add_parser("fig6", help="read-path overhead comparison")
    p6.add_argument("--lut", choices=["column", "register"], default="column")
    p6.set_defaults(func=_cmd_fig6)

    p7 = sub.add_parser("fig7", help="application quality CDF")
    p7.add_argument("--benchmark", choices=["elasticnet", "pca", "knn"], default="knn")
    p7.add_argument("--p-cell", type=float, default=1e-3)
    p7.add_argument("--samples", type=int, default=5)
    p7.add_argument("--count-points", type=int, default=8)
    p7.add_argument("--scale", type=float, default=0.5)
    p7.add_argument("--seed", type=int, default=52)
    _add_sweep_options(p7)
    p7.set_defaults(func=_cmd_fig7)

    pt = sub.add_parser("table1", help="benchmark inventory")
    pt.add_argument("--scale", type=float, default=0.5)
    pt.set_defaults(func=_cmd_table1)

    pd = sub.add_parser(
        "dse",
        help="cross-layer design-space exploration (energy/quality/overhead)",
    )
    dse_sub = pd.add_subparsers(dest="dse_command", required=True)
    dse_checkpoint_help = (
        "directory of per-grid-point JSON result caches; re-running any "
        "spec that shares grid points replays them instantly"
    )

    def _add_dse_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--spec",
            default=None,
            help="ExperimentSpec JSON file describing the sweep grid",
        )
        parser.add_argument(
            "--table",
            default=None,
            help="result table previously written by 'dse run --output' "
            "(skips re-running the sweep)",
        )
        _add_sweep_options(
            parser,
            include_sampling=False,
            checkpoint_help=dse_checkpoint_help,
        )

    pd_run = dse_sub.add_parser(
        "run", help="sweep the grid and print the joined result table"
    )
    _add_dse_options(pd_run)
    pd_run.add_argument(
        "--output",
        default=None,
        help="write the result table as JSON (input for 'dse pareto --table')",
    )
    pd_run.set_defaults(func=_cmd_dse_run)

    pd_pareto = dse_sub.add_parser(
        "pareto", help="energy / quality-at-yield Pareto frontier"
    )
    _add_dse_options(pd_pareto)
    pd_pareto.add_argument(
        "--benchmark",
        default=None,
        help="restrict the frontier to one benchmark (default: every "
        "benchmark, each with its own frontier)",
    )
    pd_pareto.set_defaults(func=_cmd_dse_pareto)

    pd_report = dse_sub.add_parser(
        "report", help="Pareto frontier plus energy-at-iso-quality summary"
    )
    _add_dse_options(pd_report)
    pd_report.set_defaults(func=_cmd_dse_report)

    pd_opt = dse_sub.add_parser(
        "optimize",
        help="budgeted frontier recovery: surrogate-ordered successive "
        "halving with CI-band pruning (same frontier as 'dse pareto' for a "
        "fraction of the dies)",
    )
    pd_opt.add_argument(
        "--spec",
        required=True,
        help="ExperimentSpec JSON file describing the sweep grid (an "
        "'optimizer' section supplies defaults the flags below override)",
    )
    pd_opt.add_argument(
        "--rungs",
        type=_positive_int,
        default=None,
        help="successive-halving rungs (default 3, or the spec's)",
    )
    pd_opt.add_argument(
        "--eta",
        type=float,
        default=None,
        help="die-cap growth factor between rungs (default 2, or the spec's)",
    )
    pd_opt.add_argument(
        "--frontier-slack",
        type=float,
        default=None,
        metavar="QUALITY",
        help="extra quality-band separation required before a row is pruned "
        "(default 0; larger values prune less and guard the frontier harder)",
    )
    pd_opt.add_argument(
        "--rung0-dies",
        type=_positive_int,
        default=None,
        metavar="DIES",
        help="per-cell die cap of rung 0 (default: two dies per failure "
        "count, the adaptive probe's minimum)",
    )
    pd_opt.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="HALF_WIDTH",
        help="confidence half-width at which a cell's probe stops early "
        "(default 0.02, or the spec's optimizer section)",
    )
    pd_opt.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="processes per probe sweep (results are bit-identical for any "
        "count)",
    )
    pd_opt.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="directory of per-cell engine round-state checkpoints "
        "(default: a run-private temporary directory; a --store covers "
        "resumption across runs)",
    )
    pd_opt.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store: finished rungs are recorded as "
        "dse-rung records and replayed on re-runs with zero die "
        "evaluations; warm rows also seed the rung-0 surrogate ordering",
    )
    pd_opt.add_argument(
        "--executor",
        choices=["local", "tcp"],
        default="local",
        help="shard executor tier of every probe (see 'dse run --executor')",
    )
    pd_opt.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="rendezvous address of the tcp executor (requires --executor tcp)",
    )
    pd_opt.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="shared secret for the tcp handshake (requires --executor tcp)",
    )
    pd_opt.add_argument(
        "--output",
        default=None,
        help="write the full audit table (rows, prune log, adaptive "
        "reports) as JSON",
    )
    pd_opt.set_defaults(func=_cmd_dse_optimize)

    ps = sub.add_parser(
        "store",
        help="inspect and maintain a persistent result store "
        "(see --store on fig5/fig7/dse)",
    )
    store_sub = ps.add_subparsers(dest="store_command", required=True)

    def _add_store_root(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--store",
            required=True,
            metavar="DIR",
            help="result store directory (must already exist)",
        )

    ps_query = store_sub.add_parser(
        "query", help="list the live (latest-per-key) records"
    )
    _add_store_root(ps_query)
    ps_query.add_argument(
        "--kind",
        choices=["quality", "mse", "dse-rung"],
        default=None,
        help="only records of this evaluation kind",
    )
    ps_query.add_argument(
        "--key",
        default=None,
        metavar="PREFIX",
        help="only records whose configuration hash starts with PREFIX",
    )
    ps_query.add_argument(
        "--count",
        action="store_true",
        help="print only the number of matching records",
    )
    ps_query.set_defaults(func=_cmd_store_query)

    ps_gc = store_sub.add_parser(
        "gc", help="compact the store (keep the newest record per key)"
    )
    _add_store_root(ps_gc)
    ps_gc.set_defaults(func=_cmd_store_gc)

    ps_export = store_sub.add_parser(
        "export", help="export the live records to a file"
    )
    _add_store_root(ps_export)
    ps_export.add_argument(
        "--output", required=True, metavar="FILE", help="output file path"
    )
    ps_export.add_argument(
        "--format",
        choices=["jsonl", "csv", "parquet"],
        default="jsonl",
        help="jsonl = full records (lossless); csv/parquet = flat summary "
        "table (parquet requires pyarrow)",
    )
    ps_export.set_defaults(func=_cmd_store_export)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Like the store: status lines, the backend note goes to stderr so every
    # stdout table stays byte-identical across backends -- backend choice
    # changes throughput, never results.
    from repro.kernels import active_backend

    print(f"kernel backend: {active_backend().name}", file=sys.stderr)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
