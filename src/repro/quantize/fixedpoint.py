"""Signed fixed-point (Q-format) conversion with saturation.

A :class:`FixedPointFormat` with ``total_bits = 32`` and ``frac_bits = 16``
(the default, "Q15.16") represents values in ``[-2**15, 2**15 - 2**-16]`` with
a resolution of ``2**-16``.  Values are stored as ``total_bits``-wide
2's-complement integers -- exactly the representation whose bit significance
the bit-shuffling scheme exploits: a fault in a low-order bit perturbs the
value by a tiny fraction, a fault in the MSB flips its sign and magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.words import from_twos_complement, to_twos_complement

__all__ = ["FixedPointFormat"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed Q-format description: ``total_bits`` wide with ``frac_bits`` fraction bits."""

    total_bits: int = 32
    frac_bits: int = 16

    def __post_init__(self) -> None:
        if self.total_bits <= 1:
            raise ValueError("total_bits must be at least 2 (sign + magnitude)")
        if self.total_bits > 63:
            raise ValueError("total_bits must not exceed 63")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                "frac_bits must be non-negative and smaller than total_bits"
            )

    # ------------------------------------------------------------------ #
    # Range and resolution
    # ------------------------------------------------------------------ #
    @property
    def scale(self) -> float:
        """Value of one least-significant bit, ``2**-frac_bits``."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    @property
    def max_raw(self) -> int:
        """Largest signed integer code."""
        return 2 ** (self.total_bits - 1) - 1

    @property
    def min_raw(self) -> int:
        """Smallest signed integer code."""
        return -(2 ** (self.total_bits - 1))

    # ------------------------------------------------------------------ #
    # Scalar conversion
    # ------------------------------------------------------------------ #
    def to_raw(self, value: float) -> int:
        """Quantise a real value to its signed integer code (with saturation)."""
        if not np.isfinite(value):
            raise ValueError(f"cannot quantise non-finite value {value}")
        raw = int(round(value / self.scale))
        return max(self.min_raw, min(self.max_raw, raw))

    def from_raw(self, raw: int) -> float:
        """De-quantise a signed integer code back to a real value."""
        if not self.min_raw <= raw <= self.max_raw:
            raise ValueError(f"raw code {raw} outside the {self.total_bits}-bit range")
        return raw * self.scale

    def to_pattern(self, value: float) -> int:
        """Quantise to the unsigned 2's-complement bit pattern stored in memory."""
        return to_twos_complement(self.to_raw(value), self.total_bits)

    def from_pattern(self, pattern: int) -> float:
        """Recover a real value from a stored 2's-complement bit pattern."""
        return self.from_raw(from_twos_complement(pattern, self.total_bits))

    # ------------------------------------------------------------------ #
    # Array conversion
    # ------------------------------------------------------------------ #
    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Quantise an array of reals to signed integer codes (int64, saturated)."""
        values = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(values)):
            raise ValueError("cannot quantise non-finite values")
        raw = np.rint(values / self.scale)
        return np.clip(raw, self.min_raw, self.max_raw).astype(np.int64)

    def dequantize_array(self, raw: np.ndarray) -> np.ndarray:
        """De-quantise signed integer codes back to float64 values."""
        raw = np.asarray(raw, dtype=np.int64)
        if np.any(raw > self.max_raw) or np.any(raw < self.min_raw):
            raise ValueError("raw codes outside the representable range")
        return raw.astype(np.float64) * self.scale

    def quantization_error_bound(self) -> float:
        """Worst-case absolute rounding error for in-range values (half an LSB)."""
        return self.scale / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.total_bits - self.frac_bits - 1}.{self.frac_bits}"
