"""Fixed-point quantisation used to place application data in the memory model.

The paper stores 32-bit 2's-complement values in the faulty memory; the
application datasets are real-valued, so they are quantised to a Q-format
fixed-point representation before being written and de-quantised after being
read back.  :class:`~repro.quantize.fixedpoint.FixedPointFormat` captures that
conversion (with saturation) for scalars and numpy arrays.
"""

from repro.quantize.fixedpoint import FixedPointFormat

__all__ = ["FixedPointFormat"]
