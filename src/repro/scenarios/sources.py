"""Fault sources: the first stage of every scenario pipeline.

* :class:`IidPcellSource` -- the paper's baseline population: every cell of a
  die fails independently, so a ``fault_count``-stratum draw is uniform over
  all cell subsets of that size.  This source is *bit-identical* to the
  historical direct :meth:`FaultMap.random_batch_with_count` call (same
  generator calls in the same order), which is what keeps the default
  scenario's pinned golden curves intact.
* :class:`AgedPcellSource` -- the same spatially-i.i.d. draw, but the
  operating point the stratified grid is computed at is shifted by a
  BTI-style :class:`~repro.faultmodel.aging.AgingModel`: after ``years`` in
  the field every cell's critical voltage has drifted upwards by the model's
  mean drift, which is equivalent to operating the fresh die at a supply
  lowered by that drift.  The shifted ``Pcell`` widens the failure-count
  grid and reweights the strata, so an aged die population genuinely sees
  more faults.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.faultmodel.aging import AgingModel
from repro.faultmodel.pcell import PcellModel
from repro.memory.faults import FaultKind, FaultMap
from repro.memory.organization import MemoryOrganization
from repro.scenarios.base import DEFAULT_MAX_ROUNDS, FaultSource

__all__ = ["AgedPcellSource", "IidPcellSource"]


class IidPcellSource(FaultSource):
    """Uniform i.i.d. cell failures -- the paper's Monte-Carlo baseline."""

    def __init__(self, fault_kind: FaultKind = FaultKind.BIT_FLIP) -> None:
        self._fault_kind = fault_kind

    @property
    def fault_kind(self) -> FaultKind:
        """Behaviour assigned to the drawn faulty cells."""
        return self._fault_kind

    def sample_batch(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        vectorized: bool = True,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[FaultMap]:
        return FaultMap.random_batch_with_count(
            organization,
            fault_count,
            batch_size,
            rng,
            kind=self._fault_kind,
            max_faults_per_word=max_faults_per_word,
            max_rounds=max_rounds,
            vectorized=vectorized,
        )

    def to_dict(self) -> Dict[str, object]:
        base: Dict[str, object] = {"kind": "iid-pcell"}
        # The default fault kind is omitted so the default scenario's
        # description (and every hash derived from it) matches the
        # pre-scenario era exactly.
        if self._fault_kind is not FaultKind.BIT_FLIP:
            base["fault_kind"] = self._fault_kind.value
        return base


class AgedPcellSource(IidPcellSource):
    """I.i.d. cell failures at an aging-shifted operating point.

    Parameters
    ----------
    aging_model:
        The critical-voltage drift law.
    years:
        Time in the field at which the population is evaluated.
    temperature_c:
        Operating temperature (``None`` = the model's reference temperature).
        With a positive activation energy, higher temperatures accelerate the
        drift (Arrhenius law).
    pcell_model:
        ``Pcell(VDD)`` calibration used to translate the drift into a
        probability shift (calibrated 28 nm model by default).
    """

    def __init__(
        self,
        aging_model: Optional[AgingModel] = None,
        years: float = 10.0,
        temperature_c: Optional[float] = None,
        pcell_model: Optional[PcellModel] = None,
        fault_kind: FaultKind = FaultKind.BIT_FLIP,
    ) -> None:
        super().__init__(fault_kind)
        if years < 0:
            raise ValueError("years must be non-negative")
        self._aging_model = aging_model if aging_model is not None else AgingModel()
        self._years = float(years)
        self._temperature_c = None if temperature_c is None else float(temperature_c)
        if self._temperature_c is not None:
            # Validate eagerly: spec loaders and the CLI validate scenarios
            # by *constructing* them, so an impossible temperature must fail
            # here, not mid-sweep at the first drift evaluation.
            self._aging_model.temperature_acceleration(self._temperature_c)
        self._pcell_model = (
            pcell_model if pcell_model is not None else PcellModel.calibrated_28nm()
        )

    @property
    def aging_model(self) -> AgingModel:
        """The drift law of this source."""
        return self._aging_model

    @property
    def years(self) -> float:
        """Field time of the evaluated population."""
        return self._years

    def effective_p_cell(self, p_cell: float) -> float:
        """Aged ``Pcell``: the base operating point with the mean drift applied.

        A drift ``d`` of every cell's critical voltage is equivalent to
        operating the fresh population at ``VDD - d``, so the base ``p_cell``
        is mapped to a voltage through the calibration's inverse, lowered by
        the drift, and mapped back.  At ``years = 0`` (or zero drift) the
        base probability is returned exactly -- the time-zero identity.
        """
        drift = self._aging_model.mean_drift(
            self._years, temperature_c=self._temperature_c
        )
        if drift == 0.0:
            return p_cell
        vdd = self._pcell_model.vdd_for_p_cell(p_cell)
        # Clamp: a drift larger than the whole supply means the population is
        # essentially all-faulty; the Pcell model needs a positive voltage.
        aged_vdd = max(vdd - drift, 1e-6)
        return self._pcell_model.p_cell(aged_vdd)

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        aging = self._aging_model
        data.update(
            {
                "kind": "aged-pcell",
                "years": self._years,
                "temperature_c": self._temperature_c,
                # `variability` is omitted: the source acts only through the
                # mean drift, so the per-cell spread cannot affect results
                # and must not key the checkpoint cache.
                "aging_model": {
                    "drift_at_reference_v": aging.drift_at_reference_v,
                    "reference_years": aging.reference_years,
                    "time_exponent": aging.time_exponent,
                    "activation_energy_ev": aging.activation_energy_ev,
                    "reference_temperature_c": aging.reference_temperature_c,
                },
                "pcell_model": {
                    "v_crit_mean": self._pcell_model.v_crit_mean,
                    "v_crit_sigma": self._pcell_model.v_crit_sigma,
                },
            }
        )
        return data
