"""Composable fault-scenario pipeline: source -> transforms -> repair.

Which faults a die sees is the single input every quality/energy trade-off of
the paper rests on, yet a fault *population* is more than a cell-failure
probability: aging shifts the operating point over a product lifetime,
defects cluster along word/bit lines, and spare rows/columns remove part of
the population before the protection scheme ever sees it.  This module
defines the composable pipeline that expresses all of those as one object:

``FaultScenario = FaultSource -> [FaultTransform ...] -> [RepairStage]``

* a :class:`FaultSource` draws the base fault maps of a failure-count stratum
  (uniform i.i.d. cells by default, optionally with an aged/shifted
  ``Pcell``);
* each :class:`FaultTransform` reshapes the drawn population (e.g. regroups
  the faults into spatially correlated row/column bursts);
* an optional repair stage (see :mod:`repro.scenarios.repair`) removes the
  faults covered by spare rows/columns, modelling conventional redundancy
  applied *before* protection encoding.

Scenarios are consumed by :class:`~repro.faultmodel.montecarlo.FaultMapSampler`
(batch sampling), by the :class:`~repro.sim.engine.SweepEngine` workers
(per-die seeded sampling), and -- by name, through :class:`ScenarioSpec` and
the design registry -- by :class:`~repro.dse.spec.ExperimentSpec` and the
CLI.  The default ``iid-pcell`` scenario reproduces the historical sampling
stream bit-for-bit: same generator calls, same rejection order, same maps.

Randomness contract
-------------------

Every stage consumes randomness only from the generator handed to
:meth:`FaultScenario.sample_batch`.  The sweep engine passes each die's own
seed-sequence child, so scenario sampling inherits the engine's
worker-count/shard-order bit-identity guarantee unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.memory.faults import FaultKind, FaultMap
from repro.memory.organization import MemoryOrganization

if TYPE_CHECKING:  # pragma: no cover - import cycle: transient imports base
    from repro.scenarios.transient import TransientTier

__all__ = [
    "FaultScenario",
    "FaultSource",
    "FaultTransform",
    "RepairStageLike",
    "ScenarioSpec",
    "validated_effective_p_cell",
]

#: Default per-map redraw budget of the rejection samplers (matches the
#: historical ``FaultMap.random_batch_with_count`` default).
DEFAULT_MAX_ROUNDS = 1000


class FaultSource(abc.ABC):
    """Stage 1: draws the base fault maps of one failure-count stratum."""

    @abc.abstractmethod
    def sample_batch(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        vectorized: bool = True,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[FaultMap]:
        """Draw ``batch_size`` independent maps with exactly ``fault_count`` faults."""

    def effective_p_cell(self, p_cell: float) -> float:
        """The cell-failure probability this source makes a base ``p_cell`` act as.

        The stratified Monte-Carlo grid (``Nmax``, the ``Pr(N = n)`` weights,
        the fault-free point mass) is computed at this probability, so a
        source that models a population shift -- aging, for instance --
        overrides it.  Identity by default.
        """
        return p_cell

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (feeds checkpoint hashes)."""


class FaultTransform(abc.ABC):
    """Stage 2: reshapes a drawn fault population (fault count preserved)."""

    #: True when the transform discards the input layout entirely and
    #: re-places every cell (reading only each map's fault count and kind).
    #: The pipeline then skips the source's placement work -- and its
    #: rejection sampling -- for the batch.
    replaces_layout: bool = False

    @abc.abstractmethod
    def apply_batch(
        self,
        maps: List[FaultMap],
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        vectorized: bool = True,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[FaultMap]:
        """Transform a batch of maps (each output keeps its input's fault count)."""

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (feeds checkpoint hashes)."""


@dataclass(frozen=True)
class FaultScenario:
    """A fully assembled fault-generation pipeline.

    Attributes
    ----------
    name:
        Catalog name of the scenario (``"iid-pcell"``, ``"aged"``, ...).
    source:
        The base fault-map generator.
    transforms:
        Transforms applied in order to every drawn batch.
    repair:
        Optional spare-row/column repair stage applied last, before the maps
        reach protection encoding (see :class:`repro.scenarios.repair.RepairStage`).
    transient:
        Optional access-sequence tier (per-read soft errors, read-disturb,
        scrubbing; see :mod:`repro.scenarios.transient`).  Unlike the static
        stages it is not consumed during map sampling: the sweep engine
        threads it into every die's :class:`~repro.sim.faulty_storage.FaultyTensorStore`,
        which replays it per load from the die's own seed stream.
    """

    name: str
    source: FaultSource
    transforms: Tuple[FaultTransform, ...] = ()
    repair: Optional["RepairStageLike"] = None
    transient: Optional["TransientTier"] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "transforms", tuple(self.transforms))

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_batch(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        vectorized: bool = True,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[FaultMap]:
        """Run the full pipeline for one failure-count stratum.

        ``fault_count`` is the *manufactured* fault count of the stratum; a
        repair stage may return maps with fewer (post-repair) faults, which is
        exactly the population the protection schemes then face.
        """
        if self.transforms and self.transforms[0].replaces_layout:
            # The first transform re-places every cell, so the source's
            # placement (and its rejection loop) would be discarded work;
            # hand it a trivial layout carrying only the count and kind.
            maps = self._placeholder_batch(organization, fault_count, batch_size)
        else:
            maps = self.source.sample_batch(
                organization,
                fault_count,
                batch_size,
                rng,
                max_faults_per_word=max_faults_per_word,
                vectorized=vectorized,
                max_rounds=max_rounds,
            )
        for transform in self.transforms:
            maps = transform.apply_batch(
                maps,
                rng,
                max_faults_per_word=max_faults_per_word,
                vectorized=vectorized,
                max_rounds=max_rounds,
            )
        if self.repair is not None:
            maps = self.repair.apply_batch(maps)
        return maps

    def _placeholder_batch(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
    ) -> List[FaultMap]:
        """Deterministic ``fault_count``-fault maps for layout-replacing transforms."""
        if fault_count > organization.total_cells:
            raise ValueError(
                f"cannot place {fault_count} faults in a memory of "
                f"{organization.total_cells} cells"
            )
        kind = getattr(self.source, "fault_kind", FaultKind.BIT_FLIP)
        flat = np.arange(fault_count, dtype=np.int64)
        width = organization.word_width
        template = FaultMap.from_cell_arrays(
            organization, flat // width, flat % width, kind
        )
        # The transform only reads count and kind, so one immutable template
        # serves the whole batch.
        return [template] * batch_size

    def sample_die(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> FaultMap:
        """One die of the scenario (the engine's per-die seeded entry point)."""
        return self.sample_batch(
            organization,
            fault_count,
            1,
            rng,
            max_faults_per_word=max_faults_per_word,
            max_rounds=max_rounds,
        )[0]

    def effective_p_cell(self, p_cell: float) -> float:
        """Operating-point shift of the scenario (delegates to the source)."""
        return self.source.effective_p_cell(p_cell)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def is_default(self) -> bool:
        """Whether this pipeline is behaviourally the plain i.i.d. draw."""
        return (
            not self.transforms
            and self.repair is None
            and self.transient is None
            and self.source.to_dict() == {"kind": "iid-pcell"}
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description of the full pipeline.

        The ``transient`` key appears only when the tier is present, so
        every static scenario's description -- and with it every existing
        checkpoint and store hash -- stays byte-identical.
        """
        description: Dict[str, object] = {
            "name": self.name,
            "source": self.source.to_dict(),
            "transforms": [t.to_dict() for t in self.transforms],
            "repair": self.repair.to_dict() if self.repair is not None else None,
        }
        if self.transient is not None:
            description["transient"] = self.transient.to_dict()
        return description


class RepairStageLike(abc.ABC):
    """Structural interface of the optional final pipeline stage."""

    @abc.abstractmethod
    def apply_batch(self, maps: List[FaultMap]) -> List[FaultMap]:
        """Repair every map of a batch (deterministic; consumes no randomness)."""

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (feeds checkpoint hashes)."""


# --------------------------------------------------------------------------- #
# Declarative scenario naming
# --------------------------------------------------------------------------- #
_DEFAULT_NAMES = ("iid-pcell", "iid", "default")


@dataclass(frozen=True)
class ScenarioSpec:
    """Serialisable, hashable name + parameters of a catalog scenario.

    This is what travels inside :class:`~repro.sim.engine.ExperimentConfig`
    (it must stay hashable for the frozen config) and inside the ``scenario``
    section of an :class:`~repro.dse.spec.ExperimentSpec` JSON file.
    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so equal
    specs hash equally regardless of the order a JSON file listed them in.
    """

    name: str = "iid-pcell"
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        name = str(self.name).strip().lower()
        if not name:
            raise ValueError("scenario name must be a non-empty string")
        object.__setattr__(self, "name", name)
        # Sort by key only: values of equal keys may not be comparable, and
        # duplicate keys are a config error, not a tie to break.
        pairs = tuple(
            sorted(((str(k), v) for k, v in tuple(self.params)), key=lambda kv: kv[0])
        )
        seen = set()
        for key, value in pairs:
            if key in seen:
                raise ValueError(f"duplicate scenario parameter {key!r}")
            seen.add(key)
            if not isinstance(value, (int, float, str, bool)):
                raise ValueError(
                    f"scenario parameter {key!r} must be a scalar "
                    f"(int/float/str/bool), got {type(value).__name__}"
                )
        object.__setattr__(self, "params", pairs)

    @property
    def is_default(self) -> bool:
        """Whether this names the plain i.i.d. scenario with no parameters."""
        return self.name in _DEFAULT_NAMES and not self.params

    def build(self) -> FaultScenario:
        """Resolve the name into a live pipeline.

        Resolution goes through the design registry's ``scenario`` kind, so
        custom scenarios registered with ``REGISTRY.register("scenario",
        name, factory)`` are buildable from any spec that validated against
        the same registry (the built-in catalog is its fallback).  Imported
        lazily because the DSE layer sits above this package; an import
        failure there is a real error and propagates -- silently falling
        back to the catalog would change which names resolve.
        """
        from repro.dse.registry import REGISTRY

        return REGISTRY.build("scenario", self.name, **dict(self.params))

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Parse a ``scenario`` JSON section, failing loudly on malformed input."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"the scenario section must be a mapping with 'name' and "
                f"optional 'params', got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"name", "params"})
        if unknown:
            raise ValueError(
                f"unknown scenario keys {unknown}; expected 'name' and "
                f"optional 'params'"
            )
        if "name" not in data:
            raise ValueError("the scenario section requires a 'name'")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError(
                f"scenario 'params' must be a mapping, got "
                f"{type(params).__name__}"
            )
        return cls(name=str(data["name"]), params=tuple(params.items()))


def validated_effective_p_cell(scenario: FaultScenario, p_cell: float) -> float:
    """The scenario-shifted operating point, validated to stay a probability.

    The single home of the shift-and-validate rule every failure-count grid
    (the sweep engine's and the yield analyzer's) must agree on.
    """
    effective = scenario.effective_p_cell(p_cell)
    if not 0.0 < effective < 1.0:
        raise ValueError(
            f"scenario {scenario.name!r} maps p_cell={p_cell} to "
            f"{effective}, which is outside (0, 1)"
        )
    return effective
