"""Repair stage: spare-row/column redundancy applied before protection encoding.

Section 2 of the paper motivates the bit-shuffling scheme by the exploding
cost of conventional redundancy at scaled voltages.  This stage makes that
comparison runnable end-to-end: a :class:`RepairStage` wraps the memory
layer's :class:`~repro.memory.redundancy.RedundancyRepair` allocator and maps
every manufactured fault map to its *post-repair* map -- the faults left over
once the greedy spare-row/column allocation has replaced what it can.  The
protection schemes (and the quality/MSE evaluators behind Figs. 5 and 7)
then operate on exactly the population a repaired die would expose, so a
``repaired`` scenario answers "how much protection does redundancy still
need?" with the same machinery as every other scenario.

The stage is deterministic (the greedy allocation consumes no randomness),
never *adds* faults, and conserves the unrepaired mass: every fault of the
output map is a fault of the input map that no spare covered.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.faults import FaultMap
from repro.memory.redundancy import RedundancyRepair
from repro.scenarios.base import RepairStageLike

__all__ = ["RepairStage"]


class RepairStage(RepairStageLike):
    """Deterministic spare-row/column repair applied to every sampled die."""

    def __init__(self, spare_rows: int = 0, spare_columns: int = 0) -> None:
        self._repair = RedundancyRepair(
            spare_rows=spare_rows, spare_columns=spare_columns
        )

    @property
    def spare_rows(self) -> int:
        """Spare rows available per die."""
        return self._repair.spare_rows

    @property
    def spare_columns(self) -> int:
        """Spare columns available per die."""
        return self._repair.spare_columns

    @property
    def allocator(self) -> RedundancyRepair:
        """The underlying greedy allocator."""
        return self._repair

    def apply(self, fault_map: FaultMap) -> FaultMap:
        """Post-repair fault map of one die (uncovered faults only)."""
        return self._repair.remaining_faults(fault_map)

    def apply_batch(self, maps: List[FaultMap]) -> List[FaultMap]:
        return [self.apply(fault_map) for fault_map in maps]

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "redundancy-repair",
            "spare_rows": self._repair.spare_rows,
            "spare_columns": self._repair.spare_columns,
        }
