"""Composable fault-scenario pipeline (source -> transforms -> repair).

The layer between the analytical fault models (:mod:`repro.faultmodel`) and
the Monte-Carlo machinery (:mod:`repro.sim`): a :class:`FaultScenario`
decides *which* fault population every die of a sweep sees.

* :mod:`repro.scenarios.base` -- the pipeline protocols
  (:class:`FaultSource`, :class:`FaultTransform`), the assembled
  :class:`FaultScenario`, and the serialisable :class:`ScenarioSpec`;
* :mod:`repro.scenarios.sources` -- i.i.d. and aging-shifted base
  populations;
* :mod:`repro.scenarios.transforms` -- spatially correlated row/column burst
  clustering;
* :mod:`repro.scenarios.repair` -- spare-row/column redundancy applied
  before protection encoding;
* :mod:`repro.scenarios.transient` -- the access-sequence tier: per-read
  soft errors, read-disturb accumulation, and periodic scrubbing;
* :mod:`repro.scenarios.catalog` -- the named catalog (``iid-pcell``,
  ``aged``, ``clustered``, ``repaired``, ``transient``) behind ``--scenario``
  flags and the ``scenario`` section of an
  :class:`~repro.dse.spec.ExperimentSpec`.

The default ``iid-pcell`` scenario reproduces the historical sampling stream
bit-for-bit; every other scenario flows through the same per-die seeding,
process fan-out, and checkpoint keying of the sweep engine.
"""

from repro.scenarios.base import (
    FaultScenario,
    FaultSource,
    FaultTransform,
    ScenarioSpec,
)
from repro.scenarios.catalog import (
    SCENARIO_NAMES,
    build_scenario,
    default_scenario,
)
from repro.scenarios.repair import RepairStage
from repro.scenarios.sources import AgedPcellSource, IidPcellSource
from repro.scenarios.transforms import ClusterTransform
from repro.scenarios.transient import (
    ReadDisturbSource,
    ScrubbingRepair,
    SoftErrorSource,
    TransientFaultSource,
    TransientReadEffects,
    TransientTier,
)

__all__ = [
    "AgedPcellSource",
    "ClusterTransform",
    "FaultScenario",
    "FaultSource",
    "FaultTransform",
    "IidPcellSource",
    "ReadDisturbSource",
    "RepairStage",
    "SCENARIO_NAMES",
    "ScenarioSpec",
    "ScrubbingRepair",
    "SoftErrorSource",
    "TransientFaultSource",
    "TransientReadEffects",
    "TransientTier",
    "build_scenario",
    "default_scenario",
]
