"""Named scenario catalog: the registry grammar behind ``--scenario``.

Every scenario an :class:`~repro.dse.spec.ExperimentSpec` or a CLI flag can
name is assembled here from the pipeline stages of this package:

==============  ==============================================================
name            pipeline
==============  ==============================================================
``iid-pcell``   plain i.i.d. source (aliases ``iid``, ``default``) -- the
                historical sampling, bit-identical to the pre-scenario code
``aged``        i.i.d. source at an :class:`AgingModel`-shifted ``Pcell``
                (``years``, ``temperature_c``, drift-law parameters)
``clustered``   i.i.d. source + :class:`ClusterTransform` row/column bursts
                (``cluster_size``, ``row_fraction``)
``repaired``    i.i.d. source + spare-row/column :class:`RepairStage`
                (``spare_rows``, ``spare_columns``)
``transient``   i.i.d. source + per-read :class:`TransientTier` (``ser``
                bit-flip probability, ``ser_distribution`` bernoulli/poisson,
                ``disturb`` read-disturb probability, ``scrub_interval``
                passes between :class:`ScrubbingRepair` rewrites)
==============  ==============================================================

Unknown names and unknown/invalid parameters raise :class:`ValueError` with
the accepted grammar -- a typo in a spec file must never silently run the
default scenario.  The catalog is also registered as the ``scenario`` kind of
the :data:`repro.dse.registry.REGISTRY`, so specs resolve through the same
namespaced registry as schemes, benchmarks, and Pcell models.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.faultmodel.aging import AgingModel
from repro.scenarios.base import FaultScenario
from repro.scenarios.repair import RepairStage
from repro.scenarios.sources import AgedPcellSource, IidPcellSource
from repro.scenarios.transforms import ClusterTransform
from repro.scenarios.transient import (
    ReadDisturbSource,
    ScrubbingRepair,
    SoftErrorSource,
    TransientTier,
)

__all__ = ["SCENARIO_NAMES", "build_scenario", "default_scenario"]

#: Canonical catalog names (aliases excluded).
SCENARIO_NAMES: Tuple[str, ...] = (
    "iid-pcell", "aged", "clustered", "repaired", "transient",
)

_ALIASES = {"iid": "iid-pcell", "default": "iid-pcell"}


def default_scenario() -> FaultScenario:
    """The plain i.i.d. pipeline every unconfigured sweep runs."""
    return FaultScenario(name="iid-pcell", source=IidPcellSource())


def _int_param(name: str, value: object) -> int:
    """Strict integer coercion: a fractional value is a config error.

    Silently truncating ``cluster_size=2.9`` to 2 would run a different
    scenario than the one the checkpoint hash (which records the raw
    parameter) describes -- so it must fail loudly instead.
    """
    if isinstance(value, bool) or (
        isinstance(value, float) and not value.is_integer()
    ):
        raise ValueError(
            f"parameter {name!r} must be an integer, got {value!r}"
        )
    try:
        return int(value)
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"parameter {name!r} must be an integer, got {value!r}"
        ) from error


def _build_iid() -> FaultScenario:
    return default_scenario()


def _build_aged(
    years: float = 10.0,
    temperature_c: Optional[float] = None,
    drift_at_reference_v: float = 0.040,
    reference_years: float = 10.0,
    time_exponent: float = 0.2,
    activation_energy_ev: float = 0.1,
) -> FaultScenario:
    # Note: AgingModel's per-cell `variability` is deliberately not exposed;
    # the aged scenario acts only through the mean drift, so the parameter
    # could not change any result and would only fragment checkpoint caches.
    aging_model = AgingModel(
        drift_at_reference_v=float(drift_at_reference_v),
        reference_years=float(reference_years),
        time_exponent=float(time_exponent),
        activation_energy_ev=float(activation_energy_ev),
    )
    return FaultScenario(
        name="aged",
        source=AgedPcellSource(
            aging_model=aging_model,
            years=float(years),
            temperature_c=None if temperature_c is None else float(temperature_c),
        ),
    )


def _build_clustered(
    cluster_size: int = 4, row_fraction: float = 0.5
) -> FaultScenario:
    return FaultScenario(
        name="clustered",
        source=IidPcellSource(),
        transforms=(
            ClusterTransform(
                cluster_size=_int_param("cluster_size", cluster_size),
                row_fraction=float(row_fraction),
            ),
        ),
    )


def _build_repaired(spare_rows: int = 4, spare_columns: int = 2) -> FaultScenario:
    return FaultScenario(
        name="repaired",
        source=IidPcellSource(),
        repair=RepairStage(
            spare_rows=_int_param("spare_rows", spare_rows),
            spare_columns=_int_param("spare_columns", spare_columns),
        ),
    )


def _build_transient(
    ser: float = 1e-5,
    disturb: float = 0.0,
    scrub_interval: Optional[int] = None,
    ser_distribution: str = "bernoulli",
) -> FaultScenario:
    # The static i.i.d. base stays: p_cell still governs manufacturing
    # defects; the transient tier adds per-read effects on top of them.
    sources = []
    if float(ser) > 0.0:
        sources.append(
            SoftErrorSource(
                flip_probability=float(ser),
                distribution=str(ser_distribution),
            )
        )
    if float(disturb) > 0.0:
        sources.append(ReadDisturbSource(disturb_probability=float(disturb)))
    if not sources:
        raise ValueError(
            "the transient scenario needs ser > 0 or disturb > 0; with both "
            "zero it would silently run the plain i.i.d. scenario"
        )
    scrubbing = None
    if scrub_interval is not None:
        if float(disturb) <= 0.0:
            raise ValueError(
                "scrub_interval requires disturb > 0: scrubbing repairs "
                "accumulated read-disturb state, and soft errors are not "
                "persistent"
            )
        scrubbing = ScrubbingRepair(
            period=_int_param("scrub_interval", scrub_interval)
        )
    return FaultScenario(
        name="transient",
        source=IidPcellSource(),
        transient=TransientTier(sources=tuple(sources), scrubbing=scrubbing),
    )


_FACTORIES: Dict[str, Callable[..., FaultScenario]] = {
    "iid-pcell": _build_iid,
    "aged": _build_aged,
    "clustered": _build_clustered,
    "repaired": _build_repaired,
    "transient": _build_transient,
}


def build_scenario(name: str, **params) -> FaultScenario:
    """Assemble the catalog scenario named ``name`` with keyword parameters.

    Names are case-insensitive and ``iid`` / ``default`` alias ``iid-pcell``.
    Unknown names and unknown or ill-typed parameters raise
    :class:`ValueError` describing the accepted grammar.
    """
    normalized = str(name).strip().lower()
    normalized = _ALIASES.get(normalized, normalized)
    factory = _FACTORIES.get(normalized)
    if factory is None:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of "
            f"{', '.join(SCENARIO_NAMES)}"
        )
    try:
        return factory(**params)
    except TypeError as error:
        raise ValueError(
            f"invalid parameters for scenario {normalized!r}: {error}"
        ) from error
