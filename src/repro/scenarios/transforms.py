"""Fault transforms: population reshaping stages of a scenario pipeline.

:class:`ClusterTransform` models spatially correlated defects: instead of
scattering a die's ``N`` faults uniformly (the i.i.d. assumption behind
Eq. 3), the faults are regrouped into contiguous *bursts* -- runs of adjacent
cells along a word line (row burst: one row, consecutive bit positions) or
along a bit line (column burst: one bit position, consecutive rows).  Such
clustering is the signature of lithographic/etch defects and of shared
peripheral circuitry failing, and it stresses the protection schemes very
differently from i.i.d. cells: a row burst concentrates several faults in a
single word, while a column burst aligns faults at the same significance
across many words.

The transform is conditioned on the stratum's fault count: it preserves the
exact number of faults of every input map and only re-places them, so the
stratified ``Pr(N = n)`` weighting of the Monte-Carlo sweep stays valid
unchanged.

Two implementations are provided and gated against each other by
``benchmarks/bench_scenarios.py``:

* the default *vectorized* sampler draws whole batches of burst layouts as a
  few NumPy passes with rejection of colliding clusters;
* ``vectorized=False`` runs the straightforward per-map/per-cluster Python
  reference.  The two are distributionally identical (same burst geometry,
  same rejection rule) but consume the generator differently, so their
  streams are not interchangeable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.faults import FaultKind, FaultMap
from repro.memory.organization import MemoryOrganization
from repro.scenarios.base import DEFAULT_MAX_ROUNDS, FaultTransform

__all__ = ["ClusterTransform"]


class ClusterTransform(FaultTransform):
    """Regroup each map's faults into row/column bursts of ``cluster_size``.

    Parameters
    ----------
    cluster_size:
        Target burst length.  A map with ``N`` faults is placed as
        ``ceil(N / cluster_size)`` bursts; all but the last have exactly
        ``cluster_size`` cells.
    row_fraction:
        Probability that a burst runs along a row (word line); the remainder
        run along a column (bit line).  When one orientation is infeasible
        (the burst does not fit that way, or row bursts would exceed the
        sweep's ``max_faults_per_word`` limit), a mixed fraction restricts to
        the feasible orientation; an explicit ``0.0`` or ``1.0`` request is
        never silently inverted and fails loudly instead.
    """

    #: The transform re-places every cell; the pipeline skips the source's
    #: placement work for batches it leads.
    replaces_layout = True

    def __init__(self, cluster_size: int = 4, row_fraction: float = 0.5) -> None:
        if cluster_size < 1:
            raise ValueError("cluster_size must be at least 1")
        if not 0.0 <= row_fraction <= 1.0:
            raise ValueError("row_fraction must be in [0, 1]")
        self._cluster_size = int(cluster_size)
        self._row_fraction = float(row_fraction)

    @property
    def cluster_size(self) -> int:
        """Target burst length."""
        return self._cluster_size

    @property
    def row_fraction(self) -> float:
        """Probability of a burst running along a row."""
        return self._row_fraction

    # ------------------------------------------------------------------ #
    # Batch application
    # ------------------------------------------------------------------ #
    def apply_batch(
        self,
        maps: List[FaultMap],
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        vectorized: bool = True,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[FaultMap]:
        if not maps:
            return []
        organization = maps[0].organization
        out: List[FaultMap] = []
        # Stratified batches share one fault count; group contiguous runs of
        # equal counts so mixed batches still vectorise per group.
        start = 0
        while start < len(maps):
            count = maps[start].fault_count
            end = start
            while end < len(maps) and maps[end].fault_count == count:
                end += 1
            cells = self.sample_cells(
                organization,
                count,
                end - start,
                rng,
                max_faults_per_word=max_faults_per_word,
                vectorized=vectorized,
                max_rounds=max_rounds,
            )
            # Kind is resolved per map: maps sharing a count may still carry
            # different (uniform) kinds, and each keeps its own.
            out.extend(
                FaultMap.from_cell_arrays(
                    organization, rows, columns, self._batch_kind(fault_map)
                )
                for fault_map, (rows, columns) in zip(maps[start:end], cells)
            )
            start = end
        return out

    @staticmethod
    def _batch_kind(fault_map: FaultMap) -> FaultKind:
        """Fault behaviour carried over to the re-placed cells.

        Re-placement cannot meaningfully redistribute a *mixed* kind
        population (which kind lands where would be arbitrary), so mixed
        input maps are rejected rather than silently collapsed to one kind.
        """
        kinds = {site.kind for site in fault_map}
        if len(kinds) > 1:
            raise ValueError(
                "ClusterTransform cannot re-place a mixed-kind fault map; "
                f"got kinds {sorted(k.value for k in kinds)}"
            )
        return kinds.pop() if kinds else FaultKind.BIT_FLIP

    # ------------------------------------------------------------------ #
    # Burst layout sampling
    # ------------------------------------------------------------------ #
    def _cluster_lengths(self, fault_count: int) -> np.ndarray:
        size = min(self._cluster_size, fault_count)
        n_clusters = math.ceil(fault_count / size)
        lengths = np.full(n_clusters, size, dtype=np.int64)
        lengths[-1] = fault_count - size * (n_clusters - 1)
        return lengths

    def _effective_row_fraction(
        self,
        organization: MemoryOrganization,
        lengths: np.ndarray,
        max_faults_per_word: Optional[int],
    ) -> float:
        """Resolve orientation feasibility into a usable row-burst probability.

        A *mixed* ``row_fraction`` (strictly between 0 and 1) restricts to
        whichever orientation remains feasible.  An *explicit* orientation
        request (exactly 0.0 or 1.0) is never silently inverted: if that
        orientation is infeasible -- the burst does not fit, or row bursts
        would exceed ``max_faults_per_word`` -- the transform fails loudly.
        """
        longest = int(lengths.max())
        row_ok = longest <= organization.word_width and (
            max_faults_per_word is None or longest <= max_faults_per_word
        )
        column_ok = longest <= organization.rows
        fraction = self._row_fraction
        if 0.0 < fraction < 1.0:
            if not row_ok:
                fraction = 0.0
            elif not column_ok:
                fraction = 1.0
        infeasible = (fraction == 0.0 and not column_ok) or (
            fraction == 1.0 and not row_ok
        )
        if infeasible:
            orientation = "column" if fraction == 0.0 else "row"
            raise ValueError(
                f"cannot place {orientation} bursts of length {longest} in a "
                f"{organization.rows}x{organization.word_width} memory"
                + (
                    f" with at most {max_faults_per_word} faults per word"
                    if max_faults_per_word is not None
                    else ""
                )
            )
        return fraction

    def sample_cells(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        *,
        max_faults_per_word: Optional[int] = None,
        vectorized: bool = True,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Draw ``batch_size`` burst layouts of exactly ``fault_count`` cells.

        Returns one ``(rows, columns)`` index-array pair per map.  Layouts in
        which two bursts collide (duplicate cell) or which violate
        ``max_faults_per_word`` are rejected and redrawn, so every accepted
        layout is uniform over the valid burst placements.
        """
        if fault_count < 0:
            raise ValueError("fault_count must be non-negative")
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        if batch_size == 0:
            return []
        empty = np.empty(0, dtype=np.int64)
        if fault_count == 0:
            return [(empty, empty) for _ in range(batch_size)]
        if fault_count > organization.total_cells:
            raise ValueError(
                f"cannot place {fault_count} faults in a memory of "
                f"{organization.total_cells} cells"
            )
        lengths = self._cluster_lengths(fault_count)
        row_fraction = self._effective_row_fraction(
            organization, lengths, max_faults_per_word
        )
        if vectorized:
            return self._sample_cells_vectorized(
                organization,
                fault_count,
                batch_size,
                rng,
                lengths,
                row_fraction,
                max_faults_per_word,
                max_rounds,
            )
        return [
            self._sample_cells_scalar(
                organization,
                fault_count,
                rng,
                lengths,
                row_fraction,
                max_faults_per_word,
                max_rounds,
            )
            for _ in range(batch_size)
        ]

    def _sample_cells_vectorized(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        lengths: np.ndarray,
        row_fraction: float,
        max_faults_per_word: Optional[int],
        max_rounds: int,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        rows_n = organization.rows
        width = organization.word_width
        n_clusters = lengths.size
        # Flatten the (cluster, offset) structure once: fault j belongs to
        # cluster cluster_of[j] at in-burst position offset[j].
        cluster_of = np.repeat(np.arange(n_clusters), lengths)
        offset = np.concatenate([np.arange(length) for length in lengths])
        accepted_rows = np.empty((batch_size, fault_count), dtype=np.int64)
        accepted_cols = np.empty((batch_size, fault_count), dtype=np.int64)
        pending = np.arange(batch_size)
        for _ in range(max_rounds):
            if pending.size == 0:
                break
            p = pending.size
            along_row = rng.random((p, n_clusters)) < row_fraction
            u_anchor = rng.random((p, n_clusters))
            u_start = rng.random((p, n_clusters))
            # Row burst: anchor row uniform, start column uniform over the
            # positions where the whole burst fits -- and symmetrically for
            # column bursts.  Both orientations consume the same two uniform
            # draws so the stream does not depend on the orientation mix.
            row_anchor = np.floor(u_anchor * rows_n).astype(np.int64)
            col_start = np.floor(u_start * (width - lengths + 1)).astype(np.int64)
            col_anchor = np.floor(u_anchor * width).astype(np.int64)
            row_start = np.floor(u_start * (rows_n - lengths + 1)).astype(np.int64)
            burst_along_row = along_row[:, cluster_of]
            rows = np.where(
                burst_along_row,
                row_anchor[:, cluster_of],
                row_start[:, cluster_of] + offset,
            )
            cols = np.where(
                burst_along_row,
                col_start[:, cluster_of] + offset,
                col_anchor[:, cluster_of],
            )
            flat = rows * width + cols
            flat_sorted = np.sort(flat, axis=1)
            bad = np.any(flat_sorted[:, 1:] == flat_sorted[:, :-1], axis=1)
            if max_faults_per_word is not None:
                rows_sorted = np.sort(rows, axis=1)
                equal_neighbours = rows_sorted[:, 1:] == rows_sorted[:, :-1]
                if max_faults_per_word == 1:
                    bad |= np.any(equal_neighbours, axis=1)
                else:
                    run_len = np.ones((p, fault_count), dtype=np.int64)
                    for j in range(1, fault_count):
                        run_len[:, j] = np.where(
                            equal_neighbours[:, j - 1], run_len[:, j - 1] + 1, 1
                        )
                    bad |= run_len.max(axis=1) > max_faults_per_word
            good = ~bad
            accepted_rows[pending[good]] = rows[good]
            accepted_cols[pending[good]] = cols[good]
            pending = pending[bad]
        if pending.size:
            raise RuntimeError(
                f"could not place {pending.size} clustered fault maps after "
                f"{max_rounds} rounds; lower cluster_size or fault_count"
            )
        return [
            (accepted_rows[i], accepted_cols[i]) for i in range(batch_size)
        ]

    def _sample_cells_scalar(
        self,
        organization: MemoryOrganization,
        fault_count: int,
        rng: np.random.Generator,
        lengths: np.ndarray,
        row_fraction: float,
        max_faults_per_word: Optional[int],
        max_rounds: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cluster Python reference of the same rejection sampler."""
        rows_n = organization.rows
        width = organization.word_width
        for _ in range(max_rounds):
            cells: List[Tuple[int, int]] = []
            for length in lengths:
                length = int(length)
                along_row = rng.random() < row_fraction
                u_anchor = rng.random()
                u_start = rng.random()
                if along_row:
                    row = int(u_anchor * rows_n)
                    col0 = int(u_start * (width - length + 1))
                    cells.extend((row, col0 + j) for j in range(length))
                else:
                    col = int(u_anchor * width)
                    row0 = int(u_start * (rows_n - length + 1))
                    cells.extend((row0 + j, col) for j in range(length))
            if len(set(cells)) != fault_count:
                continue
            if max_faults_per_word is not None:
                per_row: Dict[int, int] = {}
                for row, _col in cells:
                    per_row[row] = per_row.get(row, 0) + 1
                if max(per_row.values()) > max_faults_per_word:
                    continue
            rows = np.array([r for r, _c in cells], dtype=np.int64)
            cols = np.array([c for _r, c in cells], dtype=np.int64)
            return rows, cols
        raise RuntimeError(
            f"could not place a clustered fault map after {max_rounds} "
            f"rounds; lower cluster_size or fault_count"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "cluster",
            "cluster_size": self._cluster_size,
            "row_fraction": self._row_fraction,
        }
