"""Transient-fault tier: per-read soft errors, read-disturb, and scrubbing.

The static pipeline of :mod:`repro.scenarios.base` answers *which cells this
die manufactured broken*; this module answers *what additionally goes wrong
while the die is being read*.  Transient faults depend on the access
sequence, not the fault map: a soft error (SER) flips a stored bit for one
read, read-disturb accumulates weak cells into persistent flips as a row is
read over and over, and scrubbing periodically rewrites the array to clear
that accumulated state.

A :class:`TransientTier` rides on a :class:`~repro.scenarios.base.FaultScenario`
next to the static stages.  The sweep engine hands each die one extra seed
drawn from the die's own seed-sequence child, and
:class:`~repro.sim.faulty_storage.FaultyTensorStore` replays the tier from
that seed on every load -- so transient sampling inherits the engine's
worker-count/shard-order bit-identity guarantee, and a store/checkpoint hash
that includes the tier describes the run exactly.

Randomness contract
-------------------

``sample_read_effects`` consumes generator draws in one canonical order,
identical for the batched NumPy path and the scalar reference path
(``vectorized=False``): per access pass, each source's ``accumulate`` in
tuple order; after the final pass, each source's ``read_masks`` in tuple
order.  Soft errors are drawn only for the final, observed read --
intermediate-pass SER flips are overwritten before anyone looks at them, so
modelling them would spend randomness without changing any result.  The two
paths therefore produce bit-identical effects; only the mask *application*
differs (NumPy scatter ops versus a per-position Python loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.faults import FaultMap
from repro.memory.organization import MemoryOrganization
from repro.scenarios.base import RepairStageLike

__all__ = [
    "ReadDisturbSource",
    "ScrubbingRepair",
    "SoftErrorSource",
    "TransientFaultSource",
    "TransientReadEffects",
    "TransientTier",
]

#: Distributions :class:`SoftErrorSource` can draw strike counts from.
SER_DISTRIBUTIONS = ("bernoulli", "poisson")


def _validated_probability(name: str, value: float) -> float:
    """Eager probability validation (spec loaders and the CLI validate
    scenarios by *constructing* them, so a bad rate must fail here)."""
    probability = float(value)
    if not 0.0 <= probability < 1.0:
        raise ValueError(
            f"{name} must lie in [0, 1), got {probability!r}"
        )
    return probability


class TransientFaultSource:
    """One per-read fault mechanism of a :class:`TransientTier`.

    Subclasses implement either hook (both default to "no effect"):

    * :meth:`accumulate` -- persistent per-pass effects (read-disturb):
      OR new flips into the per-row ``disturb_masks`` array, once per pass;
    * :meth:`read_masks` -- ephemeral effects of the final observed read
      (soft errors): return a per-value XOR mask array, or ``None``.

    Every draw must go through ``rng`` in the same call sequence for
    ``vectorized`` True and False -- bit-identity between the two paths is
    the contract the differential tests enforce.
    """

    def accumulate(
        self,
        n_values: int,
        rows: int,
        width: int,
        rng: np.random.Generator,
        disturb_masks: np.ndarray,
        *,
        vectorized: bool = True,
    ) -> None:
        """Fold one access pass's persistent effects into ``disturb_masks``."""

    def read_masks(
        self,
        n_values: int,
        rows: int,
        width: int,
        rng: np.random.Generator,
        *,
        vectorized: bool = True,
    ) -> Optional[np.ndarray]:
        """Per-value XOR masks of the final observed read (``None`` = none)."""
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (feeds checkpoint hashes)."""
        raise NotImplementedError


class SoftErrorSource(TransientFaultSource):
    """Per-read SER bit flips: every read observes fresh, independent strikes.

    ``distribution`` selects the strike-count law:

    * ``"bernoulli"`` -- each of the ``n_values * width`` data bits flips
      independently with ``flip_probability`` (drawn as one binomial count
      plus a uniform without-replacement placement, which is distributionally
      identical and vectorizes);
    * ``"poisson"`` -- particle strikes arrive as a Poisson stream with rate
      ``flip_probability`` per bit-read; strikes land uniformly (with
      replacement) and toggle, so two strikes on one cell cancel.
    """

    def __init__(
        self, flip_probability: float, distribution: str = "bernoulli"
    ) -> None:
        self.flip_probability = _validated_probability(
            "flip_probability", flip_probability
        )
        normalized = str(distribution).strip().lower()
        if normalized not in SER_DISTRIBUTIONS:
            raise ValueError(
                f"unknown SER distribution {distribution!r}; expected one "
                f"of {', '.join(SER_DISTRIBUTIONS)}"
            )
        self.distribution = normalized

    def _draw_positions(
        self, total: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Flat strike positions in ``[0, total)`` -- the only rng draws."""
        if self.distribution == "bernoulli":
            strikes = int(rng.binomial(total, self.flip_probability))
            if strikes == 0:
                return np.empty(0, dtype=np.int64)
            return rng.choice(total, size=strikes, replace=False).astype(
                np.int64
            )
        strikes = int(rng.poisson(self.flip_probability * total))
        if strikes == 0:
            return np.empty(0, dtype=np.int64)
        return rng.integers(0, total, size=strikes, dtype=np.int64)

    def read_masks(
        self,
        n_values: int,
        rows: int,
        width: int,
        rng: np.random.Generator,
        *,
        vectorized: bool = True,
    ) -> Optional[np.ndarray]:
        positions = self._draw_positions(n_values * width, rng)
        masks = np.zeros(n_values, dtype=np.uint64)
        if positions.size == 0:
            return masks
        if vectorized:
            bits = np.uint64(1) << (positions % width).astype(np.uint64)
            np.bitwise_xor.at(masks, positions // width, bits)
        else:
            for position in positions.tolist():
                value_index = position // width
                masks[value_index] = np.uint64(
                    int(masks[value_index]) ^ (1 << (position % width))
                )
        return masks

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "soft-error",
            "flip_probability": self.flip_probability,
            "distribution": self.distribution,
        }


class ReadDisturbSource(TransientFaultSource):
    """Read-disturb accumulation: every pass weakens cells until scrubbed.

    Each access pass disturbs each physical data cell independently with
    ``disturb_probability`` (drawn as one binomial count plus a uniform
    without-replacement placement over the accessed cells).  Disturbed cells
    stay flipped -- ORed into the per-row state -- until a
    :class:`ScrubbingRepair` rewrite clears them.
    """

    def __init__(self, disturb_probability: float) -> None:
        self.disturb_probability = _validated_probability(
            "disturb_probability", disturb_probability
        )

    def accumulate(
        self,
        n_values: int,
        rows: int,
        width: int,
        rng: np.random.Generator,
        disturb_masks: np.ndarray,
        *,
        vectorized: bool = True,
    ) -> None:
        total = n_values * width
        disturbed = int(rng.binomial(total, self.disturb_probability))
        if disturbed == 0:
            return
        positions = rng.choice(total, size=disturbed, replace=False).astype(
            np.int64
        )
        if vectorized:
            row_indices = (positions // width) % rows
            bits = np.uint64(1) << (positions % width).astype(np.uint64)
            np.bitwise_or.at(disturb_masks, row_indices, bits)
        else:
            for position in positions.tolist():
                row = (position // width) % rows
                disturb_masks[row] = np.uint64(
                    int(disturb_masks[row]) | (1 << (position % width))
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "read-disturb",
            "disturb_probability": self.disturb_probability,
        }


class ScrubbingRepair(RepairStageLike):
    """Periodic scrubbing: rewrite the array every ``period`` access passes.

    Modelled as a repair stage of the scenario pipeline: on the static
    fault-map side it is the identity (a rewrite cannot fix a manufactured
    defect), while inside the transient tier it clears the accumulated
    read-disturb state at every period boundary.  Scrubbing is deterministic
    and consumes no randomness, so adding or removing it never shifts any
    other draw.
    """

    def __init__(self, period: int) -> None:
        period = int(period)
        if period < 1:
            raise ValueError(f"scrub period must be >= 1, got {period}")
        self.period = period

    def apply_batch(self, maps: List[FaultMap]) -> List[FaultMap]:
        """Identity on static maps: scrubbing repairs state, not defects."""
        return maps

    def scrub(self, disturb_masks: np.ndarray) -> None:
        """One scrub pass: clear every accumulated disturb flip in place."""
        disturb_masks[:] = np.uint64(0)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "scrubbing-repair", "period": self.period}


@dataclass(frozen=True)
class TransientReadEffects:
    """What one replayed access trace did to the array, as observed.

    Attributes
    ----------
    disturb_masks:
        Per physical row, the uint64 OR-mask of data cells still disturbed
        at the final read (post-scrubbing).
    read_masks:
        Per stored value, the uint64 XOR-mask of soft-error flips on the
        final read.
    """

    disturb_masks: np.ndarray
    read_masks: np.ndarray

    def observed_masks(self, value_rows: np.ndarray) -> np.ndarray:
        """Per-value XOR masks of the final read (disturb state + SER).

        XOR composition is the faithful model: a disturbed cell struck again
        by a soft error reads back correct.
        """
        return self.disturb_masks[value_rows] ^ self.read_masks

    @property
    def accumulated_fault_mass(self) -> int:
        """Total disturbed data cells surviving to the final read."""
        return int(
            np.sum(np.bitwise_count(self.disturb_masks), dtype=np.int64)
        )


@dataclass(frozen=True)
class TransientTier:
    """The access-sequence dimension of a fault scenario.

    Attributes
    ----------
    sources:
        Transient mechanisms applied in order (their draw order is part of
        the bit-identity contract).
    scrubbing:
        Optional periodic rewrite clearing accumulated read-disturb state.
    """

    sources: Tuple[TransientFaultSource, ...]
    scrubbing: Optional[ScrubbingRepair] = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        if not self.sources:
            raise ValueError(
                "a transient tier needs at least one fault source"
            )
        for source in self.sources:
            if not isinstance(source, TransientFaultSource):
                raise TypeError(
                    f"transient sources must be TransientFaultSource "
                    f"instances, got {type(source).__name__}"
                )
        if self.scrubbing is not None and not isinstance(
            self.scrubbing, ScrubbingRepair
        ):
            raise TypeError(
                f"scrubbing must be a ScrubbingRepair, got "
                f"{type(self.scrubbing).__name__}"
            )

    def sample_read_effects(
        self,
        organization: MemoryOrganization,
        n_values: int,
        passes: int,
        rng: np.random.Generator,
        *,
        vectorized: bool = True,
    ) -> TransientReadEffects:
        """Replay ``passes`` access passes and return the final read's effects.

        The pass loop is canonical (see the module docstring): scrub at each
        period boundary, then each source accumulates; after the last pass,
        each source contributes its final-read XOR masks.  Because every
        draw depends only on the pass index -- never on the accumulated
        state -- scrubbing more often can only remove flips, which is the
        monotonicity the property tests pin down.
        """
        if n_values < 0:
            raise ValueError(f"n_values must be >= 0, got {n_values}")
        if passes < 1:
            raise ValueError(
                f"an access trace needs at least one pass, got {passes}"
            )
        rows = organization.rows
        width = organization.word_width
        disturb_masks = np.zeros(rows, dtype=np.uint64)
        for pass_index in range(1, passes + 1):
            if (
                self.scrubbing is not None
                and pass_index > 1
                and (pass_index - 1) % self.scrubbing.period == 0
            ):
                self.scrubbing.scrub(disturb_masks)
            for source in self.sources:
                source.accumulate(
                    n_values,
                    rows,
                    width,
                    rng,
                    disturb_masks,
                    vectorized=vectorized,
                )
        read_masks = np.zeros(n_values, dtype=np.uint64)
        for source in self.sources:
            masks = source.read_masks(
                n_values, rows, width, rng, vectorized=vectorized
            )
            if masks is not None:
                read_masks ^= masks
        return TransientReadEffects(
            disturb_masks=disturb_masks, read_masks=read_masks
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (feeds checkpoint hashes)."""
        return {
            "sources": [source.to_dict() for source in self.sources],
            "scrubbing": (
                None if self.scrubbing is None else self.scrubbing.to_dict()
            ),
        }
