"""Application-level quality metrics (Table 1).

Self-contained numpy implementations of the metrics the paper reports for its
three benchmarks:

* ``r2_score`` -- coefficient of determination (Elasticnet / wine quality),
* ``explained_variance_score`` -- explained variance ratio (PCA / Madelon),
* ``accuracy_score`` -- classification score (KNN / activity recognition),

plus ``mean_squared_error`` as a general-purpose helper.  The signatures match
the scikit-learn functions the paper used, so the benchmarks read naturally.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "explained_variance_score",
    "mean_squared_error",
    "r2_score",
]


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different lengths: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics are undefined for empty inputs")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error between predictions and targets."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination R^2 = 1 - SS_res / SS_tot.

    Returns 0.0 when the targets are constant and predictions are imperfect
    (the scikit-learn convention), 1.0 when both are constant and equal.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def explained_variance_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Explained variance 1 - Var(y_true - y_pred) / Var(y_true)."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    var_true = float(np.var(y_true))
    var_res = float(np.var(y_true - y_pred))
    if var_true == 0.0:
        return 1.0 if var_res == 0.0 else 0.0
    return 1.0 - var_res / var_true


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different lengths: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("accuracy is undefined for empty inputs")
    return float(np.mean(y_true == y_pred))
