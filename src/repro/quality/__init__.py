"""Quality metrics and distribution utilities.

* :mod:`repro.quality.mse` -- the local mean-square-error metric of Eq. 6,
  the paper's test-time proxy for application output quality.
* :mod:`repro.quality.metrics` -- application-level quality metrics used in
  Table 1 / Fig. 7 (R^2, explained variance, classification accuracy).
* :mod:`repro.quality.cdf` -- weighted empirical CDF utilities used to build
  the yield-versus-quality curves of Figs. 5 and 7.
"""

from repro.quality.cdf import WeightedEcdf
from repro.quality.metrics import (
    accuracy_score,
    explained_variance_score,
    mean_squared_error,
    r2_score,
)
from repro.quality.mse import (
    mse_from_error_positions,
    mse_of_fault_map,
    word_error_energy,
)

__all__ = [
    "WeightedEcdf",
    "accuracy_score",
    "explained_variance_score",
    "mean_squared_error",
    "mse_from_error_positions",
    "mse_of_fault_map",
    "r2_score",
    "word_error_energy",
]
