"""Weighted empirical cumulative distribution functions.

The yield analysis of the paper builds CDFs of a quality metric over memory
samples whose importance differs: a sample drawn for failure count ``n``
represents probability mass ``Pr(N = n) / (samples for that n)``.  The
:class:`WeightedEcdf` collects (value, weight) pairs -- including an explicit
point mass at the fault-free quality -- and answers the questions the figures
need: ``P(Q <= q)`` for Fig. 5 style metrics where *smaller is better*, and
``P(Q >= q)`` for Fig. 7 style metrics where *larger is better*.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["WeightedEcdf"]


class WeightedEcdf:
    """Empirical CDF over weighted observations."""

    def __init__(
        self,
        values: Sequence[float] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            raise ValueError("an empirical CDF needs at least one observation")
        if weights is None:
            weights = np.full(values.shape, 1.0 / values.size)
        else:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if weights.shape != values.shape:
                raise ValueError("values and weights must have the same length")
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
            total = float(weights.sum())
            if total <= 0:
                raise ValueError("weights must not all be zero")
            weights = weights / total
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._weights = weights[order]
        self._cumulative = np.cumsum(self._weights)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """Sorted observation values."""
        return self._values.copy()

    @property
    def weights(self) -> np.ndarray:
        """Normalised weights in the same order as :attr:`values`."""
        return self._weights.copy()

    def __len__(self) -> int:
        return self._values.size

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def probability_at_most(self, threshold: float | np.ndarray) -> float | np.ndarray:
        """``P(X <= threshold)`` -- the yield when small metric values are good."""
        threshold = np.asarray(threshold, dtype=np.float64)
        idx = np.searchsorted(self._values, threshold, side="right")
        result = np.where(idx > 0, self._cumulative[np.maximum(idx - 1, 0)], 0.0)
        if result.ndim == 0:
            return float(result)
        return result

    def probability_at_least(self, threshold: float | np.ndarray) -> float | np.ndarray:
        """``P(X >= threshold)`` -- the yield when large metric values are good."""
        threshold = np.asarray(threshold, dtype=np.float64)
        idx = np.searchsorted(self._values, threshold, side="left")
        remaining = 1.0 - np.where(
            idx > 0, self._cumulative[np.maximum(idx - 1, 0)], 0.0
        )
        if remaining.ndim == 0:
            return float(remaining)
        return remaining

    def quantile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Smallest value ``x`` with ``P(X <= x) >= q``.

        Accepts a scalar level (returns ``float``, exactly as the historical
        scalar implementation) or an array of levels (returns an
        ``np.ndarray`` evaluated by one vectorised ``searchsorted``, each
        entry equal to the scalar result for that level).
        """
        q = np.asarray(q, dtype=np.float64)
        if np.any(q < 0.0) or np.any(q > 1.0):
            bad = q if q.ndim == 0 else q[(q < 0.0) | (q > 1.0)][0]
            raise ValueError(f"quantile level must be in [0, 1], got {bad}")
        idx = np.minimum(
            np.searchsorted(self._cumulative, q, side="left"),
            self._values.size - 1,
        )
        result = self._values[idx]
        if result.ndim == 0:
            return float(result)
        return result

    def curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(x, F(x))`` step-curve points suitable for plotting or tabulation."""
        return self._values.copy(), self._cumulative.copy()

    # ------------------------------------------------------------------ #
    # Serialisation (exact round-trip)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, List[float]]:
        """JSON-safe state: sorted values plus their *normalised* weights.

        Floats survive JSON via shortest-round-trip ``repr``, so
        :meth:`from_dict` reconstructs a bit-identical distribution -- this
        is what lets the persistent result store serve stored sweeps in place
        of re-simulation.
        """
        return {
            "values": self._values.tolist(),
            "weights": self._weights.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[float]]) -> "WeightedEcdf":
        """Rebuild a CDF saved by :meth:`to_dict`, bit-identically.

        The stored weights are already normalised and the values already
        sorted, so no renormalisation or re-sort runs here -- dividing an
        almost-1.0 float sum back out would perturb the low bits.
        """
        values = np.asarray(data["values"], dtype=np.float64)
        weights = np.asarray(data["weights"], dtype=np.float64)
        if values.size == 0:
            raise ValueError("an empirical CDF needs at least one observation")
        if weights.shape != values.shape:
            raise ValueError("values and weights must have the same length")
        ecdf = cls.__new__(cls)
        ecdf._values = values
        ecdf._weights = weights
        ecdf._cumulative = np.cumsum(weights)
        return ecdf

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_groups(
        cls, groups: Iterable[Tuple[np.ndarray, float]]
    ) -> "WeightedEcdf":
        """Build a CDF from groups of equally likely samples with a group weight.

        Each ``(samples, group_probability)`` pair contributes
        ``group_probability / len(samples)`` weight per sample -- exactly the
        importance structure of the per-failure-count Monte-Carlo sweeps in
        the paper.

        The accumulation runs through the exact mergeable summary of the
        streaming-statistics core (:class:`repro.stats.WeightedSampleBuffer`),
        so a caller holding per-shard buffers can fold them in canonical
        order and land on the same CDF this method builds in one pass;
        iterating the groups in canonical order here is bit-identical to the
        historical concatenate-then-sort construction.
        """
        from repro.stats import WeightedSampleBuffer

        buffer = WeightedSampleBuffer()
        for samples, probability in groups:
            samples = np.asarray(samples, dtype=np.float64).ravel()
            if probability < 0:
                raise ValueError("group probability must be non-negative")
            if samples.size == 0:
                continue
            buffer.update_batch(
                samples, np.full(samples.shape, probability / samples.size)
            )
        return cls(*buffer.finalize())
