"""Local mean-square-error metric of Eq. 6.

The paper uses the MSE computed over the error magnitudes of all words in the
memory as a cheap, test-time proxy for the application-level output quality::

    MSE = (1 / R) * sum_i (2 ** b_i) ** 2,   0 <= b_i < W

where ``b_i`` is the (logical) bit position corrupted by the i-th failure and
``R`` the number of rows.  With a protection scheme in place the positions
``b_i`` are the *residual* positions after mitigation, which is exactly what
:meth:`repro.core.base.ProtectionScheme.residual_error_positions` reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence


from repro.core.base import ProtectionScheme
from repro.memory.faults import FaultMap

__all__ = ["word_error_energy", "mse_from_error_positions", "mse_of_fault_map"]


def word_error_energy(bit_positions: Sequence[int]) -> float:
    """Sum of squared error magnitudes ``(2**b)**2`` for one word's error positions."""
    return float(sum((1 << b) ** 2 for b in bit_positions))


def mse_from_error_positions(
    error_positions: Iterable[Sequence[int]], rows: int
) -> float:
    """Eq. 6: MSE over the memory given per-word residual error positions.

    Parameters
    ----------
    error_positions:
        One sequence of residual (logical) bit positions per affected word.
        Fault-free words contribute nothing and may be omitted.
    rows:
        Total number of rows ``R`` of the memory (the normalisation constant).
    """
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    total = 0.0
    for positions in error_positions:
        total += word_error_energy(positions)
    return total / rows


def mse_of_fault_map(fault_map: FaultMap, scheme: ProtectionScheme) -> float:
    """MSE of one die operated behind ``scheme`` (Eq. 6 with mitigation applied).

    For every faulty row the scheme reports which logical bits remain
    vulnerable; the worst case (every residual bit actually wrong) defines the
    contribution of that row.  This matches the paper's analytical evaluation,
    which charges each failure its full error magnitude.
    """
    if fault_map.organization.word_width != scheme.word_width:
        raise ValueError(
            "fault map word width does not match the protection scheme"
        )
    per_row_positions = []
    for row, columns in fault_map.faulty_columns_by_row().items():
        per_row_positions.append(scheme.residual_error_positions(row, columns))
    return mse_from_error_positions(per_row_positions, fault_map.organization.rows)
