"""Schema of the persistent result store: versioning, records, payload codecs.

A store record is one immutable JSON document::

    {
        "schema_version": 1,
        "key":  "<sha256 config hash>",
        "kind": "quality" | "mse",
        "seq":  <monotone per-store ordinal>,
        "meta": {...summary columns, queryable without decoding the payload},
        "payload": {...the full result, exact to the bit},
    }

``key`` is the sweep engine's configuration hash -- the same digest that keys
the checkpoint cache -- so a record identifies *exactly one* reproducible
computation: geometry, operating point, budget, seeds, scenario, schemes,
fixed-point format, and (for quality sweeps) the benchmark's raw data bytes
all enter the digest.  Two runs with the same key are bit-identical by the
engine's determinism contract, which is what makes serving a stored record in
place of a re-simulation sound.

Payload codecs round-trip results exactly: float values survive JSON via
``repr`` shortest-round-trip encoding, and :class:`~repro.quality.cdf.
WeightedEcdf` state is rebuilt without renormalisation, so a distribution
read back from the store is bit-identical to the one the sweep produced.

``SCHEMA_VERSION`` guards both layers: a store created by a different schema
refuses to open, and an individual record with an unknown version refuses to
decode -- loudly, never by silently reinterpreting old bytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports store)
    from repro.faultmodel.yieldmodel import MseDistribution
    from repro.sim.engine import AdaptiveBudgetReport, QualityDistribution

__all__ = [
    "SCHEMA_VERSION",
    "STORE_FORMAT",
    "StoreError",
    "StoreSchemaError",
    "make_record",
    "validate_record",
    "quality_results_to_payload",
    "quality_results_from_payload",
    "mse_results_to_payload",
    "mse_results_from_payload",
    "adaptive_report_from_payload",
]

#: Version of the record and store layout described above.
SCHEMA_VERSION = 1

#: Format marker written to ``store.json`` (refuses foreign directories).
STORE_FORMAT = "repro-result-store"

#: Record kinds the codecs below can decode.  ``quality`` / ``mse`` hold one
#: finished sweep per record; ``dse-rung`` holds one *partial* adaptive sweep
#: of the budgeted optimizer -- the per-scheme distributions at a rung's die
#: cap plus the engine's round-state checkpoint payload, keyed by the
#: cap-free (resumable) configuration hash suffixed with the rung index and
#: cap, so a killed optimizer run resumes mid-rung bit-identically.
RECORD_KINDS = ("quality", "mse", "dse-rung")


class StoreError(RuntimeError):
    """Any result-store failure that is not a schema mismatch."""


class StoreSchemaError(StoreError):
    """The store (or one of its records) was written by a different schema."""


def make_record(
    key: str,
    kind: str,
    seq: int,
    payload: Mapping[str, Any],
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-stamped record document."""
    if kind not in RECORD_KINDS:
        raise StoreError(
            f"unknown record kind {kind!r}; expected one of "
            f"{', '.join(RECORD_KINDS)}"
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "key": str(key),
        "kind": kind,
        "seq": int(seq),
        "meta": dict(meta) if meta is not None else {},
        "payload": dict(payload),
    }


def validate_record(record: Mapping[str, Any], source: str) -> None:
    """Refuse records from another schema or with missing identity fields."""
    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        raise StoreSchemaError(
            f"record in {source} has schema version {version!r}; this build "
            f"reads version {SCHEMA_VERSION} -- run the matching release or "
            f"re-export the store"
        )
    for field in ("key", "kind", "seq"):
        if field not in record:
            raise StoreSchemaError(
                f"record in {source} is missing the {field!r} field"
            )


# --------------------------------------------------------------------------- #
# Payload codecs (exact round-trip)
# --------------------------------------------------------------------------- #
def _report_payload(report: Optional["AdaptiveBudgetReport"]):
    return None if report is None else report.to_dict()


def adaptive_report_from_payload(
    data: Optional[Mapping[str, Any]],
) -> Optional["AdaptiveBudgetReport"]:
    """Rebuild the adaptive-budget report stored with a record (if any)."""
    if data is None:
        return None
    from repro.sim.engine import AdaptiveBudgetReport

    return AdaptiveBudgetReport.from_dict(data)


def quality_results_to_payload(
    results: Mapping[str, "QualityDistribution"],
    report: Optional["AdaptiveBudgetReport"] = None,
) -> Dict[str, Any]:
    """Encode one quality sweep's per-scheme distributions."""
    return {
        "schemes": [
            {
                "scheme": dist.scheme_name,
                "benchmark": dist.benchmark,
                "metric_name": dist.metric_name,
                "p_cell": dist.p_cell,
                "clean_quality": dist.clean_quality,
                "samples": dist.samples,
                "ecdf": dist.ecdf.to_dict(),
            }
            for dist in results.values()
        ],
        "adaptive_report": _report_payload(report),
    }


def quality_results_from_payload(
    payload: Mapping[str, Any],
) -> Dict[str, "QualityDistribution"]:
    """Decode a quality payload back into per-scheme distributions."""
    from repro.quality.cdf import WeightedEcdf
    from repro.sim.engine import QualityDistribution

    results: Dict[str, QualityDistribution] = {}
    for entry in payload["schemes"]:
        results[entry["scheme"]] = QualityDistribution(
            benchmark=entry["benchmark"],
            metric_name=entry["metric_name"],
            scheme_name=entry["scheme"],
            p_cell=float(entry["p_cell"]),
            clean_quality=float(entry["clean_quality"]),
            ecdf=WeightedEcdf.from_dict(entry["ecdf"]),
            samples=int(entry["samples"]),
        )
    return results


def mse_results_to_payload(
    results: Mapping[str, "MseDistribution"],
    report: Optional["AdaptiveBudgetReport"] = None,
) -> Dict[str, Any]:
    """Encode one MSE sweep's per-scheme distributions."""
    return {
        "schemes": [
            {
                "scheme": dist.scheme_name,
                "p_cell": dist.p_cell,
                "zero_fault_probability": dist.zero_fault_probability,
                "max_failures": dist.max_failures,
                "samples": dist.samples,
                "ecdf": dist.ecdf.to_dict(),
            }
            for dist in results.values()
        ],
        "adaptive_report": _report_payload(report),
    }


def mse_results_from_payload(
    payload: Mapping[str, Any],
) -> Dict[str, "MseDistribution"]:
    """Decode an MSE payload back into per-scheme distributions."""
    from repro.faultmodel.yieldmodel import MseDistribution
    from repro.quality.cdf import WeightedEcdf

    results: Dict[str, MseDistribution] = {}
    for entry in payload["schemes"]:
        results[entry["scheme"]] = MseDistribution(
            scheme_name=entry["scheme"],
            p_cell=float(entry["p_cell"]),
            ecdf=WeightedEcdf.from_dict(entry["ecdf"]),
            zero_fault_probability=float(entry["zero_fault_probability"]),
            max_failures=int(entry["max_failures"]),
            samples=int(entry["samples"]),
        )
    return results
