"""The persistent result store: append-only records behind one handle.

Layout of a store directory::

    <root>/
        store.json      # {"format": "repro-result-store", "schema_version": 1}
        index.json      # rebuildable cache (see repro.store.index)
        segments/       # append-only JSONL record segments

:class:`ResultStore` is the single surface every layer talks through: the
sweep engine records finished sweeps and serves exact configuration-hash hits
without re-simulation, the design-space explorer and the figure functions are
read-through views, and the CLI's ``store query|gc|export`` commands operate
on the same handle.  See the README's "Result store" section for the keying
and gc semantics.

Concurrency: any number of processes may write to one store concurrently --
each handle appends to its own exclusive segment (``repro.store.segments``),
and readers merge the union with newest-``seq``-wins semantics.  A handle's
in-memory view is a snapshot taken at open time; call :meth:`refresh` to see
records other processes appended since.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional

from repro.store.index import StoreIndex
from repro.store.schema import (
    SCHEMA_VERSION,
    STORE_FORMAT,
    StoreError,
    StoreSchemaError,
    make_record,
)
from repro.store.segments import SegmentWriter, read_record_at, scan_segment

__all__ = ["ResultStore"]

_STORE_MARKER = "store.json"
_INDEX_FILE = "index.json"
_SEGMENTS_DIR = "segments"

#: Export formats of :meth:`ResultStore.export`; parquet is gated on pyarrow.
EXPORT_FORMATS = ("jsonl", "csv", "parquet")


class ResultStore:
    """One result-store directory, opened for reading and appending."""

    def __init__(self, root: str, *, create: bool = True) -> None:
        self.root = os.path.abspath(root)
        self._segments_dir = os.path.join(self.root, _SEGMENTS_DIR)
        self._index_path = os.path.join(self.root, _INDEX_FILE)
        marker = os.path.join(self.root, _STORE_MARKER)
        if os.path.exists(marker):
            with open(marker, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            if info.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"{self.root!r} is not a result store "
                    f"(format {info.get('format')!r})"
                )
            if info.get("schema_version") != SCHEMA_VERSION:
                raise StoreSchemaError(
                    f"store {self.root!r} has schema version "
                    f"{info.get('schema_version')!r}; this build reads "
                    f"version {SCHEMA_VERSION} -- run the matching release "
                    f"or export/re-import the store"
                )
        elif create:
            os.makedirs(self._segments_dir, exist_ok=True)
            self._write_marker(marker)
        else:
            raise StoreError(f"no result store at {self.root!r}")
        os.makedirs(self._segments_dir, exist_ok=True)
        self._index = StoreIndex.current(self._segments_dir, self._index_path)
        self._next_seq = self._index.next_seq
        self._writer = SegmentWriter(self._segments_dir)
        #: Hit / append events of this handle's lifetime (drives CLI notes
        #: and the zero-re-evaluation assertions of the smoke tests).
        self.session_events: List[Dict[str, Any]] = []

    @staticmethod
    def _write_marker(marker: str) -> None:
        directory = os.path.dirname(marker)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {"format": STORE_FORMAT, "schema_version": SCHEMA_VERSION},
                    handle,
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, marker)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Re-read the segment listing (picks up other writers' appends)."""
        self._index = StoreIndex.current(self._segments_dir, self._index_path)
        self._next_seq = max(self._next_seq, self._index.next_seq)

    def close(self) -> None:
        """Flush the index snapshot and release the writer segment."""
        self._writer.close()
        self._index.save(self._index_path)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _list_segments(self) -> Dict[str, int]:
        from repro.store.segments import list_segments

        return list_segments(self._segments_dir)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._index.entries)

    def keys(self) -> List[str]:
        """Every stored configuration hash (latest records)."""
        return [key for key, _entry in self._index.select()]

    def __contains__(self, key: str) -> bool:
        return key in self._index.entries

    def get_record(
        self, key: str, kind: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The newest record of ``key`` (``None`` when absent).

        ``kind`` asserts the record's evaluation mode; a mismatch means the
        caller's keying is broken (the hash should already separate modes),
        so it raises instead of returning the wrong payload.
        """
        entry = self._index.entries.get(key)
        if entry is None:
            return None
        if kind is not None and entry["kind"] != kind:
            raise StoreError(
                f"record {key[:16]} holds {entry['kind']!r} results, "
                f"expected {kind!r}"
            )
        record = read_record_at(
            self._segments_dir,
            entry["segment"],
            int(entry["offset"]),
            int(entry["length"]),
        )
        if record["key"] != key:
            raise StoreError(
                f"stale index: segment {entry['segment']!r} offset "
                f"{entry['offset']} holds key {record['key'][:16]}, expected "
                f"{key[:16]}; delete index.json to rebuild"
            )
        self.session_events.append(
            {"type": "hit", "key": key, "kind": entry["kind"],
             "meta": dict(entry.get("meta", {}))}
        )
        return record

    def query(
        self,
        kind: Optional[str] = None,
        key_prefix: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Summaries of the latest record per key (no payload decoding)."""
        return [
            {
                "key": key,
                "kind": entry["kind"],
                "seq": entry["seq"],
                "segment": entry["segment"],
                "meta": dict(entry.get("meta", {})),
            }
            for key, entry in self._index.select(kind, key_prefix)
        ]

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put_record(
        self,
        key: str,
        kind: str,
        payload: Mapping[str, Any],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Durably append one record and update the index snapshot.

        Appending never rewrites earlier records: a repeated ``key`` simply
        supersedes the old record at read time (gc reclaims the bytes).
        """
        record = make_record(key, kind, self._next_seq, payload, meta)
        self._next_seq += 1
        segment, offset, length = self._writer.append(record)
        self._index.absorb(
            key,
            {
                "segment": segment,
                "offset": offset,
                "length": length,
                "kind": kind,
                "seq": record["seq"],
                "meta": dict(meta) if meta is not None else {},
            },
        )
        # Only stamp the segment this append actually landed in: the snapshot
        # must never claim coverage of segments this handle has not scanned
        # (concurrent writers' appends), or a reopen would trust a stale
        # index instead of rebuilding from the segment listing.
        self._index.segments[segment] = offset + length
        self._index.save(self._index_path)
        self.session_events.append(
            {"type": "put", "key": key, "kind": kind,
             "meta": dict(meta) if meta is not None else {}}
        )
        return record

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def gc(self) -> Dict[str, int]:
        """Compact the store: keep the newest record per key, drop the rest.

        Live records are copied into one fresh segment (fsynced before any
        old bytes are touched), then the superseded segments are deleted and
        the index snapshot rebuilt.  Returns ``{"kept", "dropped",
        "segments_removed"}``.
        """
        self._writer.close()
        self.refresh()
        old_segments = self._list_segments()
        live = self._index.select()
        dropped = self._index.total_records - len(live)
        with SegmentWriter(self._segments_dir, stem="gc") as writer:
            for key, entry in live:
                record = read_record_at(
                    self._segments_dir,
                    entry["segment"],
                    int(entry["offset"]),
                    int(entry["length"]),
                )
                writer.append(record)
            new_name = writer.name
        removed = 0
        for name in old_segments:
            if name != new_name:
                os.unlink(os.path.join(self._segments_dir, name))
                removed += 1
        self.refresh()
        self._index.save(self._index_path)
        self._writer = SegmentWriter(self._segments_dir)
        return {
            "kept": len(live),
            "dropped": dropped,
            "segments_removed": removed,
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def _export_rows(self) -> List[Dict[str, Any]]:
        """One flat row per live record (meta fields inlined)."""
        rows: List[Dict[str, Any]] = []
        for key, entry in self._index.select():
            meta = entry.get("meta", {})
            rows.append(
                {
                    "key": key,
                    "kind": entry["kind"],
                    "seq": int(entry["seq"]),
                    "benchmark": meta.get("benchmark", ""),
                    "schemes": "|".join(meta.get("schemes", [])),
                    "p_cell": meta.get("p_cell"),
                    "total_dies": meta.get("total_dies"),
                    "evaluated_dies": meta.get("evaluated_dies"),
                }
            )
        return rows

    def export(self, path: str, format: str = "jsonl") -> int:
        """Export the live records; returns the number of rows written.

        ``jsonl`` dumps full records (payloads included, lossless -- a
        re-import is a byte-exact replay).  ``csv`` and ``parquet`` write the
        flat summary table; parquet requires :mod:`pyarrow` and fails with a
        clear message when it is not installed.
        """
        if format not in EXPORT_FORMATS:
            raise StoreError(
                f"unknown export format {format!r}; expected one of "
                f"{', '.join(EXPORT_FORMATS)}"
            )
        live = self._index.select()
        if format == "jsonl":
            with open(path, "w", encoding="utf-8") as handle:
                for key, entry in live:
                    record = read_record_at(
                        self._segments_dir,
                        entry["segment"],
                        int(entry["offset"]),
                        int(entry["length"]),
                    )
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            return len(live)
        rows = self._export_rows()
        if format == "csv":
            fields = [
                "key", "kind", "seq", "benchmark", "schemes", "p_cell",
                "total_dies", "evaluated_dies",
            ]
            with open(path, "w", encoding="utf-8", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=fields)
                writer.writeheader()
                writer.writerows(rows)
            return len(rows)
        try:
            import pyarrow  # noqa: F401
            import pyarrow.parquet as pq
        except ImportError as error:
            raise StoreError(
                "parquet export requires pyarrow, which is not installed; "
                "use --format jsonl or csv instead"
            ) from error
        table = pyarrow.Table.from_pylist(rows)
        pq.write_table(table, path)
        return len(rows)

    # ------------------------------------------------------------------ #
    # Introspection helpers (tests, CLI)
    # ------------------------------------------------------------------ #
    def record_count(self) -> int:
        """Number of live (latest-per-key) records."""
        return len(self._index.entries)

    def total_records(self) -> int:
        """Number of records across all segments, superseded included."""
        return self._index.total_records

    def iter_all_records(self):
        """Every record in every segment, superseded included (gc's view)."""
        for name in sorted(self._list_segments()):
            yield from (
                record
                for _offset, _length, record in scan_segment(
                    self._segments_dir, name
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(root={self.root!r}, records={len(self)}, "
            f"segments={len(self._list_segments())})"
        )
