"""Append-only JSONL segment files -- the store's durable byte layer.

Records live in ``segments/*.jsonl``, one JSON document per line.  Two rules
make the layer safe under concurrent writers and crashes:

* **One segment per writer.**  Every :class:`SegmentWriter` claims a fresh
  file with ``O_CREAT | O_EXCL`` (name: ``seg-<pid>-<n>.jsonl``), so two
  processes appending to the same store can never interleave bytes within a
  line -- their records land in different files, and a reader sees the union.
* **Append + fsync.**  A record is written as one complete line in a single
  ``os.write`` call and fsynced before :meth:`SegmentWriter.append` returns,
  so an acknowledged record survives a crash.  A torn final line (the writer
  died mid-append) is detected by the scanner and reported loudly rather than
  silently dropped or misparsed.

Segments are never modified in place; garbage collection writes a new
compacted segment and deletes the old files afterwards.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.store.schema import StoreError, validate_record

__all__ = [
    "SEGMENT_SUFFIX",
    "SegmentWriter",
    "list_segments",
    "read_record_at",
    "scan_segment",
]

SEGMENT_SUFFIX = ".jsonl"


def _fsync_directory(path: str) -> None:
    """fsync a directory so a freshly created/renamed entry is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SegmentWriter:
    """Owns one append-only segment file (created lazily, exclusively)."""

    def __init__(self, directory: str, stem: str = "seg") -> None:
        self._directory = directory
        self._stem = stem
        self._fd: int | None = None
        self.name: str | None = None

    def _ensure_open(self) -> int:
        if self._fd is not None:
            return self._fd
        # O_EXCL claims a name no other writer holds; the pid plus a local
        # counter keeps the loop short even when one process opens several
        # writers against the same store.
        counter = 0
        while True:
            name = f"{self._stem}-{os.getpid()}-{counter}{SEGMENT_SUFFIX}"
            path = os.path.join(self._directory, name)
            try:
                self._fd = os.open(
                    path, os.O_WRONLY | os.O_APPEND | os.O_CREAT | os.O_EXCL,
                    0o644,
                )
            except FileExistsError:
                counter += 1
                continue
            self.name = name
            _fsync_directory(self._directory)
            return self._fd

    def append(self, record: Mapping[str, Any]) -> Tuple[str, int, int]:
        """Durably append one record; returns ``(segment, offset, length)``."""
        fd = self._ensure_open()
        line = json.dumps(record, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        offset = os.lseek(fd, 0, os.SEEK_END)
        written = os.write(fd, data)
        if written != len(data):  # pragma: no cover - short writes on
            # regular files only happen on ENOSPC-style failures
            raise StoreError(
                f"short write to segment {self.name!r} "
                f"({written} of {len(data)} bytes)"
            )
        os.fsync(fd)
        assert self.name is not None
        return self.name, offset, len(data)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def list_segments(directory: str) -> Dict[str, int]:
    """``{segment name: byte size}`` of every segment file in ``directory``."""
    if not os.path.isdir(directory):
        return {}
    sizes: Dict[str, int] = {}
    for name in sorted(os.listdir(directory)):
        if name.endswith(SEGMENT_SUFFIX):
            sizes[name] = os.path.getsize(os.path.join(directory, name))
    return sizes


def scan_segment(
    directory: str, name: str
) -> Iterator[Tuple[int, int, Dict[str, Any]]]:
    """Yield ``(offset, length, record)`` for every record of one segment.

    A torn trailing line (no newline terminator -- the writer crashed while
    appending) raises :class:`StoreError` naming the segment, because a store
    that silently ignored half a record could also silently ignore a whole
    one.
    """
    path = os.path.join(directory, name)
    offset = 0
    with open(path, "rb") as handle:
        for raw in handle:
            length = len(raw)
            if not raw.endswith(b"\n"):
                raise StoreError(
                    f"segment {name!r} ends with a torn record at byte "
                    f"{offset}; the writer crashed mid-append -- truncate or "
                    f"delete the segment to recover"
                )
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as error:
                raise StoreError(
                    f"segment {name!r} holds a corrupt record at byte "
                    f"{offset}: {error}"
                ) from error
            validate_record(record, f"segment {name!r}")
            yield offset, length, record
            offset += length


def read_record_at(
    directory: str, name: str, offset: int, length: int
) -> Dict[str, Any]:
    """Read and validate one record at a known ``(offset, length)``."""
    path = os.path.join(directory, name)
    with open(path, "rb") as handle:
        handle.seek(offset)
        raw = handle.read(length)
    if len(raw) != length or not raw.endswith(b"\n"):
        raise StoreError(
            f"segment {name!r} does not hold a full record at offset "
            f"{offset} (stale index? run a query to rebuild it)"
        )
    record = json.loads(raw)
    validate_record(record, f"segment {name!r}")
    return record
