"""Incremental recomputation: which grid points does a change dirty?

The store keys every result by the engine's full configuration hash, which
covers the spec-side knobs (geometry, operating point, budget, seeds,
scenario, schemes) *and* the code-side contract (engine version, resolved
scenario pipeline, benchmark data bytes).  A grid point is therefore **clean**
exactly when its freshly computed hash is already in the store, and **dirty**
when anything that could change its result -- a spec edit, a benchmark data
change, an engine version bump -- moved the hash.  Re-running an explorer
against a warm store recomputes only the dirty points; this module is the
standalone pass that lists them without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.dse.spec import ExperimentSpec
    from repro.store.store import ResultStore

__all__ = ["GridPointStatus", "dirty_grid_points", "grid_point_statuses"]


@dataclass(frozen=True)
class GridPointStatus:
    """Store status of one (benchmark, operating point) grid cell."""

    benchmark: str
    vdd: float
    p_cell: float
    key: str
    dirty: bool


def grid_point_statuses(
    store: "ResultStore", spec: "ExperimentSpec"
) -> List[GridPointStatus]:
    """Clean/dirty status of every grid point of ``spec`` against ``store``.

    Order matches :meth:`DesignSpaceExplorer.run`: benchmark-major, then
    operating-point-major.  Computing a status builds the benchmark (its data
    bytes enter the hash -- that is what catches data changes), but runs no
    Monte-Carlo work.
    """
    from repro.dse.registry import build_benchmark
    from repro.sim.engine import SweepEngine

    statuses: List[GridPointStatus] = []
    points = spec.operating_points()
    for benchmark_name in spec.benchmarks.names:
        benchmark = build_benchmark(
            benchmark_name,
            scale=spec.benchmarks.scale,
            seed=spec.benchmarks.seed,
        )
        for point in points:
            config = spec.experiment_config(point, benchmark_name)
            engine = SweepEngine(config)
            key = engine.config_hash(benchmark)
            statuses.append(
                GridPointStatus(
                    benchmark=benchmark_name,
                    vdd=point.vdd,
                    p_cell=point.p_cell,
                    key=key,
                    dirty=key not in store,
                )
            )
    return statuses


def dirty_grid_points(
    store: "ResultStore", spec: "ExperimentSpec"
) -> List[GridPointStatus]:
    """Only the grid points a re-run would actually recompute."""
    return [
        status for status in grid_point_statuses(store, spec) if status.dirty
    ]
