"""Persistent, append-only, schema-versioned result store.

Every Monte-Carlo sweep result is addressable by the engine's configuration
hash; :class:`ResultStore` makes those results durable across runs, so warm
re-runs are served from disk without a single new die evaluation and
downstream layers (figures, DSE, services) query one database instead of
figure-shaped files.  See the README's "Result store" section.
"""

from repro.store.invalidate import (
    GridPointStatus,
    dirty_grid_points,
    grid_point_statuses,
)
from repro.store.schema import (
    SCHEMA_VERSION,
    StoreError,
    StoreSchemaError,
)
from repro.store.store import ResultStore

__all__ = [
    "SCHEMA_VERSION",
    "GridPointStatus",
    "ResultStore",
    "StoreError",
    "StoreSchemaError",
    "dirty_grid_points",
    "grid_point_statuses",
]
