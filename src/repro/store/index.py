"""Compact key index over the store's segments.

The index maps each configuration hash to the location and summary metadata
of its *newest* record, so lookups and queries never scan segment payloads.
It is strictly a cache: ``index.json`` remembers the byte size of every
segment it was built from, and :meth:`StoreIndex.current` rebuilds from a
full segment scan whenever the directory listing disagrees (another writer
appended, a segment was gc'd, the index file is missing or damaged).  Losing
the index therefore never loses data.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.store.schema import SCHEMA_VERSION, StoreSchemaError
from repro.store.segments import list_segments, scan_segment

__all__ = ["IndexEntry", "StoreIndex"]

#: Index entry of one key: location + queryable summary of the newest record.
IndexEntry = Dict[str, Any]  # segment, offset, length, kind, seq, meta


def _entry_order(entry: Mapping[str, Any]) -> Tuple[int, str, int]:
    """Newest-wins ordering: sequence ordinal, then segment name, then offset
    (concurrent writers may share a seq; the tie-break keeps gc and lookups
    deterministic either way)."""
    return int(entry["seq"]), str(entry["segment"]), int(entry["offset"])


class StoreIndex:
    """In-memory index with an atomic JSON snapshot on disk."""

    def __init__(
        self,
        entries: Optional[Dict[str, IndexEntry]] = None,
        segments: Optional[Dict[str, int]] = None,
        total_records: int = 0,
    ) -> None:
        self.entries: Dict[str, IndexEntry] = entries if entries is not None else {}
        self.segments: Dict[str, int] = segments if segments is not None else {}
        #: All records across segments, including superseded duplicates.
        self.total_records = total_records

    @property
    def next_seq(self) -> int:
        if not self.entries:
            return 0
        return max(int(e["seq"]) for e in self.entries.values()) + 1

    def absorb(self, key: str, entry: IndexEntry) -> None:
        """Record one append (newest record wins)."""
        self.total_records += 1
        current = self.entries.get(key)
        if current is None or _entry_order(entry) > _entry_order(current):
            self.entries[key] = entry

    # ------------------------------------------------------------------ #
    # Build / load / save
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, segments_dir: str) -> "StoreIndex":
        """Rebuild the index from a full scan of every segment."""
        index = cls(segments=list_segments(segments_dir))
        for name in index.segments:
            for offset, length, record in scan_segment(segments_dir, name):
                index.absorb(
                    record["key"],
                    {
                        "segment": name,
                        "offset": offset,
                        "length": length,
                        "kind": record["kind"],
                        "seq": record["seq"],
                        "meta": record.get("meta", {}),
                    },
                )
        return index

    @classmethod
    def current(cls, segments_dir: str, index_path: str) -> "StoreIndex":
        """The up-to-date index: the saved snapshot if it still matches the
        segment listing byte-for-byte, else a fresh rebuild."""
        actual = list_segments(segments_dir)
        saved = cls._load(index_path)
        if saved is not None and saved.segments == actual:
            return saved
        index = cls.build(segments_dir)
        return index

    @classmethod
    def _load(cls, path: str) -> Optional["StoreIndex"]:
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None  # damaged cache: rebuild from segments
        if data.get("schema_version") != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"index {path!r} has schema version "
                f"{data.get('schema_version')!r}; this build reads version "
                f"{SCHEMA_VERSION}"
            )
        return cls(
            entries=dict(data["entries"]),
            segments={str(k): int(v) for k, v in data["segments"].items()},
            total_records=int(data.get("total_records", len(data["entries"]))),
        )

    def save(self, path: str) -> None:
        """Atomically snapshot the index (temp file + fsync + rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        payload = {
            "schema_version": SCHEMA_VERSION,
            "segments": self.segments,
            "entries": self.entries,
            "total_records": self.total_records,
        }
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def select(
        self,
        kind: Optional[str] = None,
        key_prefix: Optional[str] = None,
    ) -> List[Tuple[str, IndexEntry]]:
        """Latest entries filtered by kind / key prefix, oldest first."""
        rows = [
            (key, entry)
            for key, entry in self.entries.items()
            if (kind is None or entry["kind"] == kind)
            and (key_prefix is None or key.startswith(key_prefix))
        ]
        rows.sort(key=lambda item: _entry_order(item[1]))
        return rows
