"""SRAM macro area, read-energy, and latency model.

Storage overheads (ECC parity columns, FM-LUT columns) are "estimated based on
SRAM macros available in this technology" in the paper.  This model captures
the first-order behaviour of such macros: area proportional to the cell count
divided by the array efficiency, read energy proportional to the number of
columns activated per access, and a read latency that is essentially
independent of a few extra columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.technology import Technology

__all__ = ["SramMacroModel"]


@dataclass(frozen=True)
class SramMacroModel:
    """First-order SRAM macro cost model bound to a technology."""

    technology: Technology

    def area_um2(self, rows: int, columns: int) -> float:
        """Macro area for ``rows x columns`` bit-cells including periphery."""
        if rows <= 0 or columns <= 0:
            raise ValueError("rows and columns must be positive")
        return rows * columns * self.technology.effective_cell_area_um2

    def column_area_um2(self, rows: int, columns: int = 1) -> float:
        """Area of adding ``columns`` extra bit columns to a ``rows``-row macro."""
        if rows <= 0 or columns < 0:
            raise ValueError("rows must be positive and columns non-negative")
        return rows * columns * self.technology.effective_cell_area_um2

    def read_energy_fj(self, columns: int) -> float:
        """Energy of one read access activating ``columns`` bit columns."""
        if columns < 0:
            raise ValueError("columns must be non-negative")
        return columns * self.technology.sram_column_read_energy_fj

    def read_latency_ps(self) -> float:
        """Intrinsic macro read latency (independent of a handful of extra columns)."""
        return self.technology.sram_read_latency_ps
