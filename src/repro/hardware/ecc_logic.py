"""Structural cost of SECDED Hamming encoder and decoder blocks.

The gate counts are derived from the actual code construction
(:class:`repro.ecc.hamming.SecdedCode`): each Hamming parity/syndrome bit is
an XOR tree over exactly the codeword positions it covers, the overall parity
is an XOR tree over the whole codeword, the single-error corrector is a
syndrome decoder plus a correction XOR per data bit.  The resulting decoder
depth for H(39,32) lands at roughly 13-15 reference gate delays, consistent
with the ~13 gate delays the paper quotes for SECDED decode.
"""

from __future__ import annotations

from repro.ecc.hamming import SecdedCode
from repro.hardware.gates import (
    AND2,
    GateCost,
    INVERTER,
    OR2,
    XOR2,
    and_tree,
    xor_tree,
)

__all__ = [
    "parity_coverage",
    "hamming_encoder_cost",
    "hamming_decoder_cost",
]


def parity_coverage(code: SecdedCode) -> list[int]:
    """Number of codeword positions covered by each Hamming parity bit.

    For parity bit ``p`` (at codeword position ``2**j``) this is the count of
    positions ``1..k+r`` whose index has bit ``j`` set, i.e. the fan-in of the
    corresponding syndrome XOR tree (excluding the parity bit itself on the
    encode side).
    """
    inner_length = code.data_bits + (code.parity_bits - 1)
    coverage = []
    for j in range(code.parity_bits - 1):
        ppos = 1 << j
        covered = sum(1 for pos in range(1, inner_length + 1) if pos & ppos)
        coverage.append(covered)
    return coverage


def hamming_encoder_cost(code: SecdedCode) -> GateCost:
    """Structural cost of the write-path encoder (parity generation).

    One XOR tree per Hamming parity bit (over the data positions it covers)
    plus the overall-parity XOR tree over the full inner codeword.  Trees
    operate in parallel, so the block delay is the deepest tree.
    """
    cost = GateCost()
    for covered in parity_coverage(code):
        # The parity bit itself is not an input on the encode side.
        tree = xor_tree(max(covered - 1, 1))
        cost = cost.parallel(tree)
    overall = xor_tree(code.codeword_bits - 1)
    return cost.parallel(overall)


def hamming_decoder_cost(code: SecdedCode) -> GateCost:
    """Structural cost of the read-path decoder (syndrome + correct + detect).

    The read-critical path is: syndrome XOR trees (over the received codeword)
    -> syndrome decode (one AND term per correctable position) -> correction
    XOR on each data bit, with the double-error-detect comparison hanging off
    the same syndrome logic in parallel.
    """
    r = code.parity_bits - 1
    # Syndrome generation: one XOR tree per Hamming parity over its coverage,
    # plus the overall parity tree; they evaluate in parallel.
    syndrome = GateCost()
    for covered in parity_coverage(code):
        syndrome = syndrome.parallel(xor_tree(covered))
    syndrome = syndrome.parallel(xor_tree(code.codeword_bits))

    # Syndrome decode: a one-hot match term (AND of r syndrome bits, some
    # inverted) for every correctable codeword position.
    per_position = and_tree(r)
    decode = GateCost(
        area=code.codeword_bits * per_position.area + r * INVERTER.area,
        delay=per_position.delay + INVERTER.delay,
        energy=code.codeword_bits * per_position.energy * 0.5
        + r * INVERTER.energy,
    )

    # Correction: one XOR per data bit, gated by the single-error qualifier.
    correction = GateCost(
        area=code.data_bits * XOR2.area + code.data_bits * AND2.area,
        delay=XOR2.delay + AND2.delay,
        energy=code.data_bits * (XOR2.energy + AND2.energy) * 0.5,
    )

    # Double-error detection: overall parity vs non-zero syndrome.
    detect = GateCost(
        area=r * OR2.area + 2 * AND2.area + INVERTER.area,
        delay=0.0,  # off the data critical path
        energy=r * OR2.energy + 2 * AND2.energy + INVERTER.energy,
    )

    return syndrome.series(decode).series(correction).parallel(detect)
