"""Structural cost of the bit-shuffling datapath: barrel rotator and FM-LUT.

The read path added by the proposed scheme consists of

* an ``nFM``-stage barrel rotator: the rotation amount is always a multiple of
  the segment size ``S``, so only ``nFM`` binary-weighted rotate stages
  (by S, 2S, 4S, ...) are required, each a width-wide 2:1 mux row, plus a thin
  control slice that converts the LUT entry into stage selects, and
* the FM-LUT itself, which the paper realises as ``nFM`` extra bit columns of
  the SRAM array (the storage cost is accounted by
  :class:`~repro.hardware.sram_macro.SramMacroModel`); a register-file
  realisation is also modelled for the ablation discussed in Section 5.1.
"""

from __future__ import annotations

from repro.hardware.gates import DFF, GateCost, INVERTER, XOR2, mux_stage

__all__ = ["barrel_rotator_cost", "rotation_control_cost", "fm_lut_register_cost"]


def barrel_rotator_cost(word_width: int, stages: int) -> GateCost:
    """Cost of a ``stages``-stage barrel rotator across a ``word_width`` datapath.

    Each stage rotates by a fixed power-of-two multiple of the segment size and
    is enabled by one control bit, so the critical path grows linearly with the
    number of stages -- the mechanism behind the overhead-versus-quality
    trade-off of Fig. 6.
    """
    if word_width < 1:
        raise ValueError("word_width must be at least 1")
    if stages < 0:
        raise ValueError("stages must be non-negative")
    cost = GateCost()
    for _ in range(stages):
        cost = cost.series(mux_stage(word_width))
    return cost


def rotation_control_cost(n_fm: int) -> GateCost:
    """Control slice converting the ``nFM``-bit LUT entry into stage selects.

    Eq. 2 maps the LUT entry ``xFM`` to the rotation ``S * (2**nFM - xFM)``;
    in hardware this is a small two's-complement negation of ``xFM`` (one
    inverter and a carry chain approximated by XORs) feeding the stage enables.
    """
    if n_fm < 0:
        raise ValueError("n_fm must be non-negative")
    if n_fm == 0:
        return GateCost()
    return GateCost(
        area=n_fm * (INVERTER.area + XOR2.area),
        delay=INVERTER.delay + XOR2.delay,
        energy=n_fm * (INVERTER.energy + XOR2.energy) * 0.5,
    )


def fm_lut_register_cost(rows: int, n_fm: int) -> GateCost:
    """Register-file realisation of the FM-LUT (ablation alternative).

    ``rows * nFM`` flip-flops plus a read mux tree selecting the addressed
    entry.  Much larger in area than the in-array column realisation for big
    memories, but removes the read-before-write penalty on the write path.
    """
    if rows < 1:
        raise ValueError("rows must be at least 1")
    if n_fm < 1:
        raise ValueError("n_fm must be at least 1")
    storage = GateCost(
        area=rows * n_fm * DFF.area,
        delay=0.0,
        energy=n_fm * DFF.energy,  # only the addressed entry toggles its outputs
    )
    # Read mux: a rows-to-1 selection per LUT bit, built from 2:1 stages.
    import math

    depth = math.ceil(math.log2(rows)) if rows > 1 else 0
    mux_gates = (rows - 1) * n_fm
    read_mux = GateCost(
        area=mux_gates * 2.0,
        delay=depth * 1.4,
        energy=depth * n_fm * 1.4,
    )
    return storage.series(read_mux)
