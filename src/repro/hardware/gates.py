"""Gate-level cost primitives for the structural overhead model.

Costs are expressed in technology-neutral units -- NAND2-equivalent area,
reference-gate delays, and gate-energy units -- and converted to physical
units (um^2, ps, fJ) by :class:`~repro.hardware.technology.Technology` at the
point where a full read path is assembled.  Composition follows simple
structural rules: areas and energies add, delays add along a series path and
take the maximum across parallel paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "GateCost",
    "INVERTER",
    "NAND2",
    "AND2",
    "OR2",
    "XOR2",
    "MUX2",
    "DFF",
    "xor_tree",
    "and_tree",
    "mux_stage",
    "decoder",
]


@dataclass(frozen=True)
class GateCost:
    """Cost of a combinational/sequential block in technology-neutral units.

    Attributes
    ----------
    area:
        NAND2-equivalent gate area.
    delay:
        Critical-path depth in reference-gate delays.
    energy:
        Switching energy per activation in gate-energy units.
    """

    area: float = 0.0
    delay: float = 0.0
    energy: float = 0.0

    def __post_init__(self) -> None:
        if self.area < 0 or self.delay < 0 or self.energy < 0:
            raise ValueError("gate costs must be non-negative")

    def series(self, other: "GateCost") -> "GateCost":
        """Compose two blocks in series: areas/energies add, delays add."""
        return GateCost(
            area=self.area + other.area,
            delay=self.delay + other.delay,
            energy=self.energy + other.energy,
        )

    def parallel(self, other: "GateCost") -> "GateCost":
        """Compose two blocks in parallel: areas/energies add, delay is the max."""
        return GateCost(
            area=self.area + other.area,
            delay=max(self.delay, other.delay),
            energy=self.energy + other.energy,
        )

    def scaled(self, count: float) -> "GateCost":
        """Replicate the block ``count`` times in parallel (delay unchanged)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return GateCost(
            area=self.area * count, delay=self.delay, energy=self.energy * count
        )

    def __add__(self, other: "GateCost") -> "GateCost":
        return self.series(other)


#: Reference gate costs (area in NAND2 equivalents, delay in reference gate
#: delays, energy in gate-energy units).  Values follow typical standard-cell
#: library ratios.
INVERTER = GateCost(area=0.6, delay=0.6, energy=0.5)
NAND2 = GateCost(area=1.0, delay=1.0, energy=1.0)
AND2 = GateCost(area=1.3, delay=1.2, energy=1.1)
OR2 = GateCost(area=1.3, delay=1.2, energy=1.1)
XOR2 = GateCost(area=2.4, delay=1.7, energy=1.9)
MUX2 = GateCost(area=2.0, delay=1.4, energy=1.4)
DFF = GateCost(area=4.5, delay=2.0, energy=2.2)


def xor_tree(inputs: int) -> GateCost:
    """Balanced XOR reduction tree over ``inputs`` bits (parity computation)."""
    if inputs < 1:
        raise ValueError("an XOR tree needs at least one input")
    if inputs == 1:
        return GateCost()
    gates = inputs - 1
    depth = math.ceil(math.log2(inputs))
    return GateCost(
        area=gates * XOR2.area,
        delay=depth * XOR2.delay,
        energy=gates * XOR2.energy,
    )


def and_tree(inputs: int) -> GateCost:
    """Balanced AND reduction tree over ``inputs`` bits (match/decode terms)."""
    if inputs < 1:
        raise ValueError("an AND tree needs at least one input")
    if inputs == 1:
        return GateCost()
    gates = inputs - 1
    depth = math.ceil(math.log2(inputs))
    return GateCost(
        area=gates * AND2.area,
        delay=depth * AND2.delay,
        energy=gates * AND2.energy,
    )


def mux_stage(width: int) -> GateCost:
    """One 2:1 multiplexer stage across a ``width``-bit datapath.

    The stage's delay is a single mux delay; the area and energy scale with the
    datapath width.  A barrel rotator is a series of such stages.
    """
    if width < 1:
        raise ValueError("datapath width must be at least 1")
    return GateCost(
        area=width * MUX2.area,
        delay=MUX2.delay,
        energy=width * MUX2.energy,
    )


def decoder(select_bits: int) -> GateCost:
    """A ``select_bits``-to-``2**select_bits`` one-hot decoder (AND of selects)."""
    if select_bits < 1:
        raise ValueError("a decoder needs at least one select bit")
    outputs = 1 << select_bits
    per_output = and_tree(select_bits)
    return GateCost(
        area=outputs * per_output.area + select_bits * INVERTER.area,
        delay=per_output.delay + INVERTER.delay,
        energy=outputs * per_output.energy * 0.5 + select_bits * INVERTER.energy,
    )
