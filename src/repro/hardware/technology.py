"""28 nm FD-SOI technology constants used by the structural overhead model.

The constants are representative published/typical values for a 28 nm
FD-SOI standard-cell and SRAM process; they set the absolute scale of the
area / power / delay estimates.  Fig. 6 of the paper normalises every scheme
to the SECDED baseline, so the reproduction is primarily sensitive to the
*relative* composition of each read path (how many gates, how many extra
columns, how deep the logic), not to these absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Technology"]


@dataclass(frozen=True)
class Technology:
    """Process-level constants for area, delay, and energy estimation.

    Attributes
    ----------
    name:
        Human-readable process name.
    gate_delay_ps:
        Delay of one reference gate (FO4-loaded NAND2) in picoseconds.
    nand2_area_um2:
        Layout area of one NAND2-equivalent gate in square micrometres.
    gate_energy_fj:
        Average switching energy of one NAND2-equivalent gate per activation
        in femtojoules (already includes a typical activity factor).
    sram_cell_area_um2:
        Area of one 6T SRAM bit-cell.
    sram_array_efficiency:
        Fraction of an SRAM macro occupied by the cell array (the rest is
        periphery); dividing the cell area by this factor gives the effective
        macro area per cell.
    sram_column_read_energy_fj:
        Read energy drawn by one bit column per access (bitline swing, sense
        amplifier, column mux).
    sram_read_latency_ps:
        Intrinsic macro read latency (address decode to data out) without any
        protection logic; protection schemes add their logic delay on top.
    """

    name: str = "28nm FD-SOI"
    gate_delay_ps: float = 14.0
    nand2_area_um2: float = 0.62
    gate_energy_fj: float = 0.85
    sram_cell_area_um2: float = 0.120
    sram_array_efficiency: float = 0.72
    sram_column_read_energy_fj: float = 4.5
    sram_read_latency_ps: float = 480.0

    def __post_init__(self) -> None:
        for field_name in (
            "gate_delay_ps",
            "nand2_area_um2",
            "gate_energy_fj",
            "sram_cell_area_um2",
            "sram_array_efficiency",
            "sram_column_read_energy_fj",
            "sram_read_latency_ps",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.sram_array_efficiency > 1.0:
            raise ValueError("sram_array_efficiency cannot exceed 1.0")

    @property
    def effective_cell_area_um2(self) -> float:
        """Macro area attributable to one bit-cell once periphery is amortised."""
        return self.sram_cell_area_um2 / self.sram_array_efficiency

    @classmethod
    def fdsoi_28nm(cls) -> "Technology":
        """The default 28 nm FD-SOI calibration used throughout the benchmarks."""
        return cls()
