"""Read-path overhead comparison of protection schemes (Fig. 6).

For every scheme the model assembles the read path that sits between the SRAM
macro and the consuming logic, plus the storage columns the scheme adds, and
reports three overhead numbers relative to an unprotected memory:

* **read power** -- energy drawn per read access by the extra columns and the
  scheme's read-side logic,
* **read delay** -- logic delay added to the read access path,
* **area** -- extra storage columns plus all scheme logic (read and write
  side), since silicon area is paid regardless of which path uses it.

Fig. 6 normalises every scheme to the H(39,32) SECDED baseline;
:class:`OverheadReport` performs that normalisation and also reports the
savings percentages quoted in the paper's abstract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.priority_ecc import PriorityEccScheme
from repro.core.scheme import BitShuffleScheme
from repro.core.secded_scheme import SecdedScheme
from repro.core.segments import max_lut_bits
from repro.ecc.hamming import secded_code_for_data_bits
from repro.hardware.ecc_logic import hamming_decoder_cost, hamming_encoder_cost
from repro.hardware.gates import GateCost
from repro.hardware.shifter import (
    barrel_rotator_cost,
    fm_lut_register_cost,
    rotation_control_cost,
)
from repro.hardware.sram_macro import SramMacroModel
from repro.hardware.technology import Technology
from repro.memory.organization import MemoryOrganization

__all__ = [
    "ReadPathOverhead",
    "WritePathOverhead",
    "OverheadReport",
    "OverheadModel",
]


@dataclass(frozen=True)
class ReadPathOverhead:
    """Absolute overhead of one scheme relative to an unprotected memory."""

    scheme: str
    read_power_fj: float
    read_delay_ps: float
    area_um2: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the benchmark harness and CLI tables."""
        return {
            "read_power_fj": self.read_power_fj,
            "read_delay_ps": self.read_delay_ps,
            "area_um2": self.area_um2,
        }


@dataclass(frozen=True)
class WritePathOverhead:
    """Absolute write-path overhead of one scheme relative to an unprotected memory.

    The paper's Fig. 6 considers only the readout path (writes are off the
    critical path for the studied applications) but explicitly notes the
    write-latency penalty of the in-array FM-LUT realisation: the LUT entry
    must be read before the shifted data can be written.  This record captures
    that side of the trade-off.
    """

    scheme: str
    write_power_fj: float
    write_delay_ps: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by benches and the CLI."""
        return {
            "write_power_fj": self.write_power_fj,
            "write_delay_ps": self.write_delay_ps,
        }


@dataclass
class OverheadReport:
    """Collection of per-scheme overheads with Fig. 6 style normalisation."""

    baseline: str
    overheads: Dict[str, ReadPathOverhead]

    def relative_to_baseline(self) -> Dict[str, Dict[str, float]]:
        """Overhead of every scheme as a fraction of the baseline's (Fig. 6 bars)."""
        base = self.overheads[self.baseline]
        result: Dict[str, Dict[str, float]] = {}
        for name, ov in self.overheads.items():
            result[name] = {
                "read_power": _ratio(ov.read_power_fj, base.read_power_fj),
                "read_delay": _ratio(ov.read_delay_ps, base.read_delay_ps),
                "area": _ratio(ov.area_um2, base.area_um2),
            }
        return result

    def savings_vs_baseline(self) -> Dict[str, Dict[str, float]]:
        """Percentage savings of every scheme versus the baseline (abstract numbers)."""
        return {
            name: {metric: 100.0 * (1.0 - value) for metric, value in rel.items()}
            for name, rel in self.relative_to_baseline().items()
        }

    def savings_between(self, scheme: str, reference: str) -> Dict[str, float]:
        """Percentage savings of ``scheme`` relative to ``reference`` (e.g. vs P-ECC)."""
        target = self.overheads[scheme]
        ref = self.overheads[reference]
        return {
            "read_power": 100.0 * (1.0 - _ratio(target.read_power_fj, ref.read_power_fj)),
            "read_delay": 100.0 * (1.0 - _ratio(target.read_delay_ps, ref.read_delay_ps)),
            "area": 100.0 * (1.0 - _ratio(target.area_um2, ref.area_um2)),
        }

    def scheme_names(self) -> List[str]:
        """Schemes included in the report, baseline first."""
        names = [self.baseline]
        names.extend(name for name in self.overheads if name != self.baseline)
        return names


def _ratio(value: float, base: float) -> float:
    if base <= 0:
        raise ValueError("baseline overhead must be positive to normalise")
    return value / base


class OverheadModel:
    """Structural read-path overhead estimator for all schemes of the paper.

    Parameters
    ----------
    organization:
        Memory geometry; the number of rows sets the storage cost of extra
        columns.
    technology:
        Process constants (defaults to the 28 nm FD-SOI calibration).
    """

    def __init__(
        self,
        organization: MemoryOrganization,
        technology: Optional[Technology] = None,
    ) -> None:
        self._organization = organization
        self._technology = technology if technology is not None else Technology.fdsoi_28nm()
        self._macro = SramMacroModel(self._technology)

    # ------------------------------------------------------------------ #
    # Unit conversion
    # ------------------------------------------------------------------ #
    def _to_power_fj(self, cost: GateCost) -> float:
        return cost.energy * self._technology.gate_energy_fj

    def _to_delay_ps(self, cost: GateCost) -> float:
        return cost.delay * self._technology.gate_delay_ps

    def _to_area_um2(self, cost: GateCost) -> float:
        return cost.area * self._technology.nand2_area_um2

    # ------------------------------------------------------------------ #
    # Per-scheme overheads
    # ------------------------------------------------------------------ #
    def secded_overhead(self) -> ReadPathOverhead:
        """H(39,32)-class SECDED: parity columns + decoder on the read path."""
        code = secded_code_for_data_bits(self._organization.word_width)
        decoder = hamming_decoder_cost(code)
        encoder = hamming_encoder_cost(code)
        columns = code.parity_bits
        return ReadPathOverhead(
            scheme=SecdedScheme(self._organization.word_width).name,
            read_power_fj=self._to_power_fj(decoder)
            + self._macro.read_energy_fj(columns),
            read_delay_ps=self._to_delay_ps(decoder),
            area_um2=self._to_area_um2(decoder)
            + self._to_area_um2(encoder)
            + self._macro.column_area_um2(self._organization.rows, columns),
        )

    def priority_ecc_overhead(self) -> ReadPathOverhead:
        """H(22,16)-class P-ECC: smaller code on the MSB half of each word."""
        scheme = PriorityEccScheme(self._organization.word_width)
        code = scheme.code
        decoder = hamming_decoder_cost(code)
        encoder = hamming_encoder_cost(code)
        columns = code.parity_bits
        return ReadPathOverhead(
            scheme=scheme.name,
            read_power_fj=self._to_power_fj(decoder)
            + self._macro.read_energy_fj(columns),
            read_delay_ps=self._to_delay_ps(decoder),
            area_um2=self._to_area_um2(decoder)
            + self._to_area_um2(encoder)
            + self._macro.column_area_um2(self._organization.rows, columns),
        )

    def bit_shuffle_overhead(
        self, n_fm: int, lut_realisation: str = "column"
    ) -> ReadPathOverhead:
        """Bit-shuffling with ``nFM`` LUT bits: rotator + FM-LUT storage.

        ``lut_realisation`` selects between the paper's straightforward
        in-array column LUT (``"column"``) and a register-file LUT
        (``"register"``), the ablation mentioned in Section 5.1.
        """
        if lut_realisation not in ("column", "register"):
            raise ValueError("lut_realisation must be 'column' or 'register'")
        width = self._organization.word_width
        scheme = BitShuffleScheme(width, n_fm)
        read_rotator = barrel_rotator_cost(width, n_fm).series(
            rotation_control_cost(n_fm)
        )
        write_rotator = barrel_rotator_cost(width, n_fm)

        if lut_realisation == "column":
            lut_area = self._macro.column_area_um2(self._organization.rows, n_fm)
            lut_read_power = self._macro.read_energy_fj(n_fm)
            lut_logic = GateCost()
        else:
            lut_logic = fm_lut_register_cost(self._organization.rows, n_fm)
            lut_area = self._to_area_um2(lut_logic)
            lut_read_power = self._to_power_fj(lut_logic)

        return ReadPathOverhead(
            scheme=scheme.name,
            read_power_fj=self._to_power_fj(read_rotator) + lut_read_power,
            read_delay_ps=self._to_delay_ps(read_rotator),
            area_um2=self._to_area_um2(read_rotator)
            + self._to_area_um2(write_rotator)
            + lut_area,
        )

    # ------------------------------------------------------------------ #
    # Write-path overheads (the paper's noted LUT read-before-write penalty)
    # ------------------------------------------------------------------ #
    def secded_write_overhead(self) -> WritePathOverhead:
        """SECDED write path: encode the word and write the parity columns."""
        code = secded_code_for_data_bits(self._organization.word_width)
        encoder = hamming_encoder_cost(code)
        return WritePathOverhead(
            scheme=SecdedScheme(self._organization.word_width).name,
            write_power_fj=self._to_power_fj(encoder)
            + self._macro.read_energy_fj(code.parity_bits),
            write_delay_ps=self._to_delay_ps(encoder),
        )

    def priority_ecc_write_overhead(self) -> WritePathOverhead:
        """P-ECC write path: encode the MSB half and write its parity columns."""
        scheme = PriorityEccScheme(self._organization.word_width)
        encoder = hamming_encoder_cost(scheme.code)
        return WritePathOverhead(
            scheme=scheme.name,
            write_power_fj=self._to_power_fj(encoder)
            + self._macro.read_energy_fj(scheme.code.parity_bits),
            write_delay_ps=self._to_delay_ps(encoder),
        )

    def bit_shuffle_write_overhead(
        self, n_fm: int, lut_realisation: str = "column"
    ) -> WritePathOverhead:
        """Bit-shuffling write path: fetch the LUT entry, rotate, then write.

        With the in-array column LUT the entry is only available after a full
        macro read, so every write pays a read-before-write latency penalty on
        top of the rotator -- the drawback the paper acknowledges for its
        straightforward realisation.  The register-file LUT removes the macro
        access from the critical path at the cost of the area modelled in
        :meth:`bit_shuffle_overhead`.
        """
        if lut_realisation not in ("column", "register"):
            raise ValueError("lut_realisation must be 'column' or 'register'")
        width = self._organization.word_width
        scheme = BitShuffleScheme(width, n_fm)
        rotator = barrel_rotator_cost(width, n_fm).series(rotation_control_cost(n_fm))
        if lut_realisation == "column":
            lut_delay = self._macro.read_latency_ps()
            lut_power = self._macro.read_energy_fj(n_fm)
        else:
            lut_logic = fm_lut_register_cost(self._organization.rows, n_fm)
            lut_delay = self._to_delay_ps(lut_logic)
            lut_power = self._to_power_fj(lut_logic)
        return WritePathOverhead(
            scheme=scheme.name,
            write_power_fj=self._to_power_fj(rotator) + lut_power,
            write_delay_ps=self._to_delay_ps(rotator) + lut_delay,
        )

    def compare_write_paths(
        self,
        n_fm_values: Optional[Sequence[int]] = None,
        lut_realisation: str = "column",
    ) -> Dict[str, WritePathOverhead]:
        """Write-path overheads of every scheme (ordered: SECDED, P-ECC, nFM...)."""
        if n_fm_values is None:
            n_fm_values = range(1, max_lut_bits(self._organization.word_width) + 1)
        result: Dict[str, WritePathOverhead] = {}
        secded = self.secded_write_overhead()
        result[secded.scheme] = secded
        pecc = self.priority_ecc_write_overhead()
        result[pecc.scheme] = pecc
        for n_fm in n_fm_values:
            entry = self.bit_shuffle_write_overhead(n_fm, lut_realisation)
            result[entry.scheme] = entry
        return result

    # ------------------------------------------------------------------ #
    # Full comparison
    # ------------------------------------------------------------------ #
    def compare(
        self,
        n_fm_values: Optional[Sequence[int]] = None,
        lut_realisation: str = "column",
    ) -> OverheadReport:
        """Assemble the Fig. 6 comparison: SECDED baseline, P-ECC, and all nFM options."""
        if n_fm_values is None:
            n_fm_values = range(1, max_lut_bits(self._organization.word_width) + 1)
        secded = self.secded_overhead()
        overheads: Dict[str, ReadPathOverhead] = {secded.scheme: secded}
        pecc = self.priority_ecc_overhead()
        overheads[pecc.scheme] = pecc
        for n_fm in n_fm_values:
            entry = self.bit_shuffle_overhead(n_fm, lut_realisation)
            overheads[entry.scheme] = entry
        return OverheadReport(baseline=secded.scheme, overheads=overheads)
