"""Hardware overhead models for the 28 nm read-path comparison (Fig. 6).

The paper synthesises the encoder/decoder blocks of SECDED ECC, P-ECC and all
bit-shuffling segment options in a 28 nm FD-SOI flow and reports the read
power, read delay and area overhead of each scheme relative to H(39,32)
SECDED.  Without access to that flow, this package substitutes a structural,
logical-effort-style model:

* :mod:`repro.hardware.technology` -- 28 nm technology constants (gate delay,
  gate area/energy, SRAM cell area, column read energy),
* :mod:`repro.hardware.gates` -- gate primitives and composition rules
  (XOR trees, mux stages),
* :mod:`repro.hardware.ecc_logic` -- structural cost of Hamming encoders and
  decoders derived from the actual code construction,
* :mod:`repro.hardware.shifter` -- cost of the segment barrel rotator and the
  FM-LUT,
* :mod:`repro.hardware.sram_macro` -- storage-column area and read energy,
* :mod:`repro.hardware.overhead` -- the read-path overhead comparison that
  regenerates Fig. 6.
"""

from repro.hardware.gates import GateCost, mux_stage, xor_tree
from repro.hardware.ecc_logic import hamming_decoder_cost, hamming_encoder_cost
from repro.hardware.energy import OperatingPoint, VoltageScalingModel
from repro.hardware.overhead import (
    OverheadModel,
    OverheadReport,
    ReadPathOverhead,
    WritePathOverhead,
)
from repro.hardware.shifter import barrel_rotator_cost, fm_lut_register_cost
from repro.hardware.sram_macro import SramMacroModel
from repro.hardware.technology import Technology

__all__ = [
    "GateCost",
    "OperatingPoint",
    "VoltageScalingModel",
    "WritePathOverhead",
    "OverheadModel",
    "OverheadReport",
    "ReadPathOverhead",
    "SramMacroModel",
    "Technology",
    "barrel_rotator_cost",
    "fm_lut_register_cost",
    "hamming_decoder_cost",
    "hamming_encoder_cost",
    "mux_stage",
    "xor_tree",
]
