"""Voltage-scaling energy model: the power-saving side of the trade-off.

The paper's closing argument is that the proposed scheme "can be used to
exploit the properties of a variety of error-resilient applications for
allowing operation at scaled voltages".  The quality side of that trade-off is
covered by the fault model and the yield analysis; this module supplies the
energy side: dynamic SRAM access energy scales roughly with ``VDD**2`` (and
leakage with ``VDD``), so running the memory at a scaled supply voltage saves
energy in exchange for the higher ``Pcell`` the protection scheme must then
mitigate.

:class:`VoltageScalingModel` combines the technology constants with a
``Pcell(VDD)`` model to answer the question behind the voltage/quality
trade-off experiment: *for a given supply voltage, how much access energy is
saved and what fault rate must the protection scheme absorb?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.faultmodel.pcell import PcellModel
from repro.hardware.technology import Technology
from repro.memory.organization import MemoryOrganization

__all__ = ["OperatingPoint", "VoltageScalingModel"]


@dataclass(frozen=True)
class OperatingPoint:
    """One supply-voltage operating point of the memory.

    Attributes
    ----------
    vdd:
        Supply voltage in volts.
    p_cell:
        Bit-cell failure probability at that voltage.
    read_energy_fj:
        Energy of one full-word read access.
    leakage_power_nw:
        Static leakage power of the array.
    energy_saving:
        Fractional read-energy saving relative to the nominal voltage.
    expected_failures:
        Mean number of faulty cells in the array at this voltage.
    """

    vdd: float
    p_cell: float
    read_energy_fj: float
    leakage_power_nw: float
    energy_saving: float
    expected_failures: float


class VoltageScalingModel:
    """Energy / fault-rate trade-off of operating an SRAM at a scaled supply.

    Parameters
    ----------
    organization:
        Memory geometry (sets the word width for access energy and the cell
        count for leakage and expected failures).
    technology:
        Process constants; the column read energy and leakage reference are
        taken at the nominal voltage.
    pcell_model:
        Calibrated ``Pcell(VDD)`` model.
    nominal_vdd:
        Nominal supply voltage the savings are measured against.
    leakage_per_cell_nw:
        Array leakage per bit-cell at the nominal voltage (nW).
    """

    def __init__(
        self,
        organization: MemoryOrganization,
        technology: Optional[Technology] = None,
        pcell_model: Optional[PcellModel] = None,
        nominal_vdd: float = 1.0,
        leakage_per_cell_nw: float = 0.015,
    ) -> None:
        if nominal_vdd <= 0:
            raise ValueError("nominal_vdd must be positive")
        if leakage_per_cell_nw < 0:
            raise ValueError("leakage_per_cell_nw must be non-negative")
        self._organization = organization
        self._technology = technology if technology is not None else Technology.fdsoi_28nm()
        self._pcell_model = (
            pcell_model if pcell_model is not None else PcellModel.calibrated_28nm()
        )
        self._nominal_vdd = nominal_vdd
        self._leakage_per_cell_nw = leakage_per_cell_nw

    @property
    def nominal_vdd(self) -> float:
        """Nominal supply voltage."""
        return self._nominal_vdd

    @property
    def pcell_model(self) -> PcellModel:
        """The bit-cell failure model used for the fault-rate side."""
        return self._pcell_model

    # ------------------------------------------------------------------ #
    # Energy components
    # ------------------------------------------------------------------ #
    def read_energy_fj(self, vdd: float) -> float:
        """Energy of one full-word read at ``vdd`` (dynamic CV^2 scaling)."""
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        nominal = (
            self._organization.word_width
            * self._technology.sram_column_read_energy_fj
        )
        return nominal * (vdd / self._nominal_vdd) ** 2

    def leakage_power_nw(self, vdd: float) -> float:
        """Array leakage power at ``vdd`` (first-order linear voltage scaling)."""
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        nominal = self._organization.total_cells * self._leakage_per_cell_nw
        return nominal * (vdd / self._nominal_vdd)

    def energy_saving(self, vdd: float) -> float:
        """Fractional read-energy saving at ``vdd`` versus the nominal voltage."""
        return 1.0 - self.read_energy_fj(vdd) / self.read_energy_fj(self._nominal_vdd)

    # ------------------------------------------------------------------ #
    # Operating points
    # ------------------------------------------------------------------ #
    def operating_point(self, vdd: float) -> OperatingPoint:
        """Full energy / fault-rate characterisation of one supply voltage."""
        p_cell = self._pcell_model.p_cell(vdd)
        return OperatingPoint(
            vdd=vdd,
            p_cell=p_cell,
            read_energy_fj=self.read_energy_fj(vdd),
            leakage_power_nw=self.leakage_power_nw(vdd),
            energy_saving=self.energy_saving(vdd),
            expected_failures=p_cell * self._organization.total_cells,
        )

    def sweep(self, vdd_values: Sequence[float] | np.ndarray) -> Dict[float, OperatingPoint]:
        """Operating points for a supply-voltage sweep (ordered as given)."""
        return {float(v): self.operating_point(float(v)) for v in vdd_values}

    def vdd_for_energy_saving(self, saving: float) -> float:
        """Supply voltage that achieves a fractional read-energy saving ``saving``."""
        if not 0.0 <= saving < 1.0:
            raise ValueError("saving must be in [0, 1)")
        return self._nominal_vdd * float(np.sqrt(1.0 - saving))
