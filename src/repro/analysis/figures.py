"""Data-series generators for every figure of the paper's evaluation.

Each ``figureN_*`` function reproduces the corresponding figure's underlying
data.  None of them plot; they return dictionaries of numpy arrays / result
objects that the benchmarks print as tables and that a notebook could plot
directly.

The Monte-Carlo figures are thin views over the design-space exploration
layer: ``figure5_mse_cdf`` and ``figure7_quality`` each evaluate one grid
point through :mod:`repro.dse.evaluate` (sharing the sweep engine's
parallelism, seeding, and checkpointing), and ``figure6_overhead`` is the
overhead join input.  The general grid lives behind ``repro-faulty-mem dse``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.no_protection import NoProtection
from repro.core.priority_ecc import PriorityEccScheme
from repro.core.scheme import BitShuffleScheme
from repro.core.base import ProtectionScheme
from repro.core.segments import (
    error_magnitude_profile,
    max_lut_bits,
    unprotected_error_magnitude_profile,
)
from repro.dse.evaluate import (
    evaluate_mse_point,
    evaluate_overhead_point,
    evaluate_quality_point,
)
from repro.faultmodel.pcell import PcellModel, classical_yield
from repro.faultmodel.yieldmodel import MseDistribution
from repro.hardware.overhead import OverheadReport
from repro.hardware.technology import Technology
from repro.memory.organization import MemoryOrganization
from repro.scenarios.base import ScenarioSpec
from repro.sim.engine import AdaptiveBudget, AdaptiveBudgetReport, ExperimentConfig
from repro.sim.experiment import BenchmarkDefinition
from repro.sim.runner import QualityDistribution

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.engine import SweepRunStats
    from repro.store.store import ResultStore

__all__ = [
    "figure2_pcell_vs_vdd",
    "figure4_error_magnitude",
    "figure5_mse_cdf",
    "figure6_overhead",
    "figure7_quality",
    "standard_figure7_schemes",
]


def figure2_pcell_vs_vdd(
    vdd_values: Optional[Sequence[float]] = None,
    model: Optional[PcellModel] = None,
    organization: Optional[MemoryOrganization] = None,
) -> Dict[str, np.ndarray]:
    """Fig. 2: bit-cell failure probability and classical yield versus supply voltage.

    Returns a dict with the VDD sweep, the per-cell failure probability, and
    the zero-failure yield of the given memory (16 kB by default) at each
    voltage -- the quantity whose collapse around 0.73 V motivates the paper.
    """
    model = model if model is not None else PcellModel.calibrated_28nm()
    organization = (
        organization if organization is not None else MemoryOrganization.paper_16kb()
    )
    if vdd_values is None:
        vdd_values = np.linspace(0.60, 1.00, 41)
    vdd = np.asarray(vdd_values, dtype=np.float64)
    p_cell = model.p_cell_curve(vdd)
    memory_yield = np.array(
        [classical_yield(p, organization.total_cells) for p in p_cell]
    )
    return {"vdd": vdd, "p_cell": p_cell, "classical_yield": memory_yield}


def figure4_error_magnitude(word_width: int = 32) -> Dict[str, np.ndarray]:
    """Fig. 4: worst-case error magnitude per faulty bit position for each nFM.

    Returns a dict mapping ``"no-correction"`` and ``"nfm=k"`` to arrays of
    error magnitudes indexed by the faulty bit position.
    """
    series: Dict[str, np.ndarray] = {
        "no-correction": unprotected_error_magnitude_profile(word_width)
    }
    for n_fm in range(1, max_lut_bits(word_width) + 1):
        series[f"nfm={n_fm}"] = error_magnitude_profile(word_width, n_fm)
    return series


def figure5_mse_cdf(
    organization: Optional[MemoryOrganization] = None,
    p_cell: float = 5e-6,
    samples_per_count: int = 300,
    coverage: float = 0.9999999,
    n_fm_values: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
    workers: int = 1,
    sampling: str = "legacy",
    master_seed: Optional[int] = None,
    checkpoint: Optional[str] = None,
    scenario: Optional[ScenarioSpec] = None,
    adaptive: Optional[AdaptiveBudget] = None,
    report_out: Optional[List[AdaptiveBudgetReport]] = None,
    store: Optional["ResultStore"] = None,
    stats_out: Optional[List["SweepRunStats"]] = None,
    access_trace: int = 1,
    executor: Optional[object] = None,
) -> Dict[str, MseDistribution]:
    """Fig. 5: CDF of the local MSE for every protection option.

    Evaluates the unprotected memory, the H(22,16) P-ECC baseline, and the
    bit-shuffling scheme for every requested ``nFM`` against the *same*
    Monte-Carlo population of faulty dies, at the paper's operating point
    (16 kB memory, Pcell = 5e-6) -- one MSE grid point of the design space
    (:func:`repro.dse.evaluate.evaluate_mse_point`).

    ``workers`` fans the per-die analysis out over processes; results are
    bit-identical for any count.  ``sampling="legacy"`` (default) draws the
    die population serially from ``rng``, reproducing the historical pinned
    curves; ``"seeded"`` derives one seed-sequence child per die from
    ``master_seed`` so sampling parallelises too.  ``checkpoint`` names an
    optional JSON results cache for resumable sweeps.  ``scenario``
    optionally names a fault-scenario pipeline (aged / clustered / repaired
    dies) the population is drawn through; ``None`` is the default i.i.d.
    population, and scenarios with a transient tier are rejected by the
    engine (the analytical MSE evaluation cannot model per-read faults; use
    :func:`figure7_quality`).  ``adaptive`` switches the sweep to the engine's
    confidence-driven budget (requires seeded sampling;
    ``samples_per_count`` then caps the spend instead of fixing it), with
    the outcome report appended to ``report_out`` when given.  ``store``
    makes the figure a store-backed view: an exact configuration-hash hit
    is served from the :class:`~repro.store.ResultStore` bit-identically
    with zero new die evaluations, and a computed sweep is recorded into
    it; ``stats_out`` collects the run's
    :class:`~repro.sim.engine.SweepRunStats` (which path ran, die counts).
    ``executor`` selects the shard executor tier (``None``/``"local"``,
    ``"inline"``, or an :class:`~repro.sim.executor.ExecutorSpec` for
    distributed TCP sweeps); results are bit-identical across tiers.
    """
    organization = (
        organization if organization is not None else MemoryOrganization.paper_16kb()
    )
    if n_fm_values is None:
        n_fm_values = range(1, max_lut_bits(organization.word_width) + 1)
    if adaptive is not None and sampling == "legacy":
        raise ValueError(
            "adaptive budgets require sampling='seeded' (the die population "
            "is not known up front)"
        )
    if sampling == "legacy":
        rng = rng if rng is not None else np.random.default_rng(2015)
        master_seed = None
    else:
        master_seed = master_seed if master_seed is not None else 2015
    config = ExperimentConfig(
        rows=organization.rows,
        word_width=organization.word_width,
        p_cell=p_cell,
        coverage=coverage,
        samples_per_count=samples_per_count,
        master_seed=master_seed,
        scheme_specs=("no-protection", "p-ecc")
        + tuple(f"bit-shuffle-nfm{n_fm}" for n_fm in n_fm_values),
        discard_multi_fault_words=False,
        scenario=scenario,
        adaptive=adaptive,
        access_trace=access_trace,
    )
    return evaluate_mse_point(
        config,
        sampling=sampling,
        rng=rng,
        workers=workers,
        checkpoint=checkpoint,
        report_out=report_out,
        store=store,
        stats_out=stats_out,
        executor=executor,
    )


def figure6_overhead(
    organization: Optional[MemoryOrganization] = None,
    technology: Optional[Technology] = None,
    lut_realisation: str = "column",
) -> OverheadReport:
    """Fig. 6: read power / read delay / area overhead relative to SECDED ECC."""
    organization = (
        organization if organization is not None else MemoryOrganization.paper_16kb()
    )
    return evaluate_overhead_point(
        organization, technology, lut_realisation=lut_realisation
    )


def standard_figure7_schemes(word_width: int = 32) -> List[ProtectionScheme]:
    """The four schemes plotted in Fig. 7: none, P-ECC, bit-shuffle nFM=1 and nFM=2."""
    return [
        NoProtection(word_width),
        PriorityEccScheme(word_width),
        BitShuffleScheme(word_width, 1),
        BitShuffleScheme(word_width, 2),
    ]


def figure7_quality(
    benchmark: BenchmarkDefinition,
    organization: Optional[MemoryOrganization] = None,
    p_cell: float = 1e-3,
    samples_per_count: int = 10,
    n_count_points: Optional[int] = 12,
    schemes: Optional[Sequence[ProtectionScheme]] = None,
    rng: Optional[np.random.Generator] = None,
    workers: int = 1,
    master_seed: Optional[int] = None,
    checkpoint: Optional[str] = None,
    scenario: Optional[ScenarioSpec] = None,
    adaptive: Optional[AdaptiveBudget] = None,
    report_out: Optional[List[AdaptiveBudgetReport]] = None,
    store: Optional["ResultStore"] = None,
    stats_out: Optional[List["SweepRunStats"]] = None,
    access_trace: int = 1,
    executor: Optional[object] = None,
) -> Dict[str, QualityDistribution]:
    """Fig. 7: CDF of the application quality metric under memory failures.

    Runs one benchmark (Elasticnet, PCA, or KNN) against the Fig. 7 scheme set
    at the 16 kB / Pcell = 1e-3 operating point.  ``samples_per_count`` and
    ``n_count_points`` control the Monte-Carlo budget (the paper uses 500
    samples for every failure count up to Nmax; the defaults here are sized
    for a laptop run and can be raised to match).

    ``workers`` fans the per-die evaluation out over processes; the result is
    bit-identical for any worker count.  When ``master_seed`` is given the
    sweep runs on the :class:`~repro.sim.engine.SweepEngine` seeded sampling
    path (one seed-sequence child per die) instead of the legacy shared
    generator ``rng``; ``checkpoint`` names an optional JSON results cache for
    resumable sweeps.  Either way the figure is one quality grid point of the
    design space (:func:`repro.dse.evaluate.evaluate_quality_point`).
    ``adaptive`` switches the sweep to the engine's confidence-driven budget
    (requires ``master_seed``; ``samples_per_count`` then caps the spend
    instead of fixing it), with the outcome report appended to
    ``report_out`` when given.  ``store`` / ``stats_out`` behave as in
    :func:`figure5_mse_cdf` (store-backed view with bit-identical hits).
    ``access_trace`` sets the read passes replayed per load for scenarios
    with a transient tier (which require ``master_seed`` -- the per-read
    corruption replays from each die's seed-sequence child).  ``executor``
    behaves as in :func:`figure5_mse_cdf`.
    """
    organization = (
        organization if organization is not None else MemoryOrganization.paper_16kb()
    )
    if schemes is None:
        schemes = standard_figure7_schemes(organization.word_width)
    if adaptive is not None and master_seed is None:
        raise ValueError(
            "adaptive budgets require a master_seed (the die population is "
            "not known up front, so legacy shared-generator sampling cannot "
            "supply it)"
        )
    config = ExperimentConfig(
        rows=organization.rows,
        word_width=organization.word_width,
        p_cell=p_cell,
        samples_per_count=samples_per_count,
        n_count_points=n_count_points,
        master_seed=master_seed,
        scheme_specs=tuple(scheme.name for scheme in schemes),
        benchmark=benchmark.name,
        scenario=scenario,
        adaptive=adaptive,
        access_trace=access_trace,
    )
    if master_seed is not None:
        return evaluate_quality_point(
            config,
            benchmark,
            schemes=list(schemes),
            workers=workers,
            checkpoint=checkpoint,
            report_out=report_out,
            store=store,
            stats_out=stats_out,
            executor=executor,
        )
    rng = rng if rng is not None else np.random.default_rng(52)
    return evaluate_quality_point(
        config,
        benchmark,
        schemes=list(schemes),
        sampling="legacy",
        rng=rng,
        workers=workers,
        checkpoint=checkpoint,
        report_out=report_out,
        store=store,
        stats_out=stats_out,
        executor=executor,
    )
