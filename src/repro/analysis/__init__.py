"""Experiment orchestration: one function per paper figure/table.

These functions glue the library's building blocks into the exact experiments
of the paper's evaluation section and return plain data structures (dicts,
numpy arrays, result dataclasses) that the benchmark harness, the examples and
the CLI all share.  See DESIGN.md for the experiment-to-module index.
"""

from repro.analysis.figures import (
    figure2_pcell_vs_vdd,
    figure4_error_magnitude,
    figure5_mse_cdf,
    figure6_overhead,
    figure7_quality,
    standard_figure7_schemes,
)
from repro.analysis.tables import table1_applications

__all__ = [
    "figure2_pcell_vs_vdd",
    "figure4_error_magnitude",
    "figure5_mse_cdf",
    "figure6_overhead",
    "figure7_quality",
    "standard_figure7_schemes",
    "table1_applications",
]
