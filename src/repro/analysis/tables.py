"""Table generators for the paper's evaluation (Table 1)."""

from __future__ import annotations

from typing import Dict, List

from repro.sim.experiment import standard_benchmarks

__all__ = ["table1_applications"]


def table1_applications(
    scale: float = 1.0, seed: int = 17
) -> List[Dict[str, object]]:
    """Table 1: evaluation applications, datasets, metrics, and fault-free quality.

    Returns one row per benchmark with the algorithm class, the dataset
    analogue used in this reproduction, the quality metric, the dataset size
    after the 0.8:0.2 split, and the measured fault-free quality -- the value
    every Fig. 7 curve is normalised against.
    """
    class_by_benchmark = {
        "elasticnet": "Regression",
        "pca": "Dimensionality Reduction",
        "knn": "Classification",
    }
    algorithm_by_benchmark = {
        "elasticnet": "Elasticnet",
        "pca": "Principal Component Analysis (PCA)",
        "knn": "K-Nearest Neighbors (KNN)",
    }
    dataset_by_benchmark = {
        "elasticnet": "wine-quality-like (synthetic analogue of UCI Wine Quality)",
        "pca": "madelon-like (synthetic analogue of NIPS'03 Madelon)",
        "knn": "activity-recognition-like (synthetic analogue of UCI Activity Recognition)",
    }
    metric_by_benchmark = {
        "elasticnet": "R2",
        "pca": "Explained Variance",
        "knn": "Score",
    }

    rows: List[Dict[str, object]] = []
    for name, benchmark in standard_benchmarks(scale=scale, seed=seed).items():
        rows.append(
            {
                "class": class_by_benchmark[name],
                "algorithm": algorithm_by_benchmark[name],
                "dataset": dataset_by_benchmark[name],
                "metric": metric_by_benchmark[name],
                "train_samples": len(benchmark.train_features),
                "test_samples": len(benchmark.test_features),
                "n_features": benchmark.train_features.shape[1],
                "clean_quality": benchmark.clean_quality(),
            }
        )
    return rows
