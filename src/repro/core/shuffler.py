"""Write-path / read-path circular shifter of the bit-shuffling scheme.

The shuffler is the datapath block added next to the memory column periphery:
a barrel rotator that right-rotates the data word by ``T(r)`` bits before it is
written and left-rotates the read-out value by the same amount to restore the
original bit order.  :class:`BitShuffler` is a thin, stateless wrapper around
the rotation primitives so the hardware block has an explicit software
counterpart that can be unit tested and reused (for example by the bulk
simulator, which applies it to whole arrays of words at once).
"""

from __future__ import annotations

import numpy as np

from repro.memory.words import (
    rotate_left,
    rotate_left_array,
    rotate_right,
    rotate_right_array,
)

__all__ = ["BitShuffler"]


class BitShuffler:
    """Barrel-rotator datapath for ``word_width``-bit words."""

    def __init__(self, word_width: int) -> None:
        if word_width <= 0:
            raise ValueError(f"word_width must be positive, got {word_width}")
        self._word_width = word_width

    @property
    def word_width(self) -> int:
        """Width of the words the shuffler operates on."""
        return self._word_width

    # ------------------------------------------------------------------ #
    # Scalar path (one word at a time, as the hardware does)
    # ------------------------------------------------------------------ #
    def shuffle(self, data: int, rotation: int) -> int:
        """Write path: right-rotate ``data`` by ``rotation`` bits."""
        return rotate_right(data, rotation, self._word_width)

    def unshuffle(self, stored: int, rotation: int) -> int:
        """Read path: left-rotate the read-out pattern by ``rotation`` bits."""
        return rotate_left(stored, rotation, self._word_width)

    # ------------------------------------------------------------------ #
    # Vector path (whole memory images for simulation speed)
    # ------------------------------------------------------------------ #
    def shuffle_array(self, data: np.ndarray, rotations: np.ndarray) -> np.ndarray:
        """Vectorised write path over arrays of words and per-word rotations."""
        return rotate_right_array(data, rotations, self._word_width)

    def unshuffle_array(self, stored: np.ndarray, rotations: np.ndarray) -> np.ndarray:
        """Vectorised read path over arrays of words and per-word rotations."""
        return rotate_left_array(stored, rotations, self._word_width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitShuffler(word_width={self._word_width})"
