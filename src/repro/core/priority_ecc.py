"""Baseline scheme: priority-based ECC (P-ECC).

P-ECC (Lee et al., Emre et al.) reduces ECC overhead by protecting only the
bits that matter most: the most-significant half of each data word is encoded
with a smaller SECDED code, while the least-significant half is stored raw.
For the paper's 32-bit words this is an H(22,16) code over bits 16..31, the
configuration used in Figs. 5, 6 and 7.

Stored-pattern layout (LSB first): the unprotected LSB half occupies columns
``0 .. W/2 - 1``; the H(22,16) codeword of the MSB half occupies the next
``W/2 + parity`` columns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import ProtectionScheme
from repro.ecc.hamming import SecdedCode, secded_code_for_data_bits
from repro.memory.words import bit_mask

__all__ = ["PriorityEccScheme"]


class PriorityEccScheme(ProtectionScheme):
    """SECDED protection applied to the most-significant bits of each word only.

    Parameters
    ----------
    word_width:
        Data word width ``W``.
    protected_bits:
        Number of most-significant bits covered by the SECDED code.  Defaults
        to ``W / 2`` -- the paper's H(22,16)-on-32-bit configuration.  Other
        fractions (e.g. protecting only the top byte with H(13,8)) trade
        protection reach for parity-storage overhead and are exercised by the
        P-ECC coverage ablation bench.
    """

    def __init__(self, word_width: int = 32, protected_bits: Optional[int] = None) -> None:
        super().__init__(word_width)
        if protected_bits is None:
            if word_width % 2 != 0:
                raise ValueError(
                    f"priority ECC splits the word in half; width {word_width} is odd"
                )
            protected_bits = word_width // 2
        if not 0 < protected_bits < word_width:
            raise ValueError(
                f"protected_bits must be in (0, {word_width}), got {protected_bits}"
            )
        self._protected_bits = protected_bits
        self._unprotected_bits = word_width - protected_bits
        self._code = secded_code_for_data_bits(self._protected_bits)
        self._low_mask = bit_mask(self._unprotected_bits)

    @property
    def code(self) -> SecdedCode:
        """SECDED code applied to the MSB half (H(22,16) for 32-bit words)."""
        return self._code

    @property
    def protected_bits(self) -> int:
        """Number of most-significant data bits under ECC protection."""
        return self._protected_bits

    @property
    def name(self) -> str:
        """Scheme name used in reports, e.g. ``"p-ecc-H(22,16)"``."""
        return f"p-ecc-{self._code.name}"

    @property
    def extra_columns(self) -> int:
        """Parity columns added to the array (6 for H(22,16))."""
        return self._code.parity_bits

    @property
    def unprotected_bits(self) -> int:
        """Number of least-significant data bits stored without protection."""
        return self._unprotected_bits

    def encode_word(self, row: int, data: int) -> int:
        """Store the unprotected LSBs raw and the protected MSBs as a SECDED codeword."""
        self._check_data(data)
        low = data & self._low_mask
        high = data >> self._unprotected_bits
        codeword = self._code.encode(high)
        return low | (codeword << self._unprotected_bits)

    def decode_word(self, row: int, stored: int) -> int:
        """Recover the word: decode the MSB codeword, pass the LSBs through."""
        if stored < 0 or stored >> self.storage_width:
            raise ValueError(
                f"stored pattern does not fit in {self.storage_width} bits"
            )
        low = stored & self._low_mask
        codeword = stored >> self._unprotected_bits
        high = self._code.decode(codeword).data
        return low | (high << self._unprotected_bits)

    def encode_words(self, rows: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Vectorised encode: raw LSB half, batch SECDED codewords for the MSBs.

        The codeword arithmetic runs on the active :mod:`repro.kernels`
        backend through the code's batch methods.
        """
        _rows, data = self._check_batch(rows, data, self.word_width, "data")
        shift = np.uint64(self._unprotected_bits)
        low = data & np.uint64(self._low_mask)
        codewords = self._code.encode_array(data >> shift)
        return low | (codewords << shift)

    def decode_words(self, rows: np.ndarray, stored: np.ndarray) -> np.ndarray:
        """Vectorised decode: batch-decode the MSB codewords, pass the LSBs through."""
        _rows, stored = self._check_batch(
            rows, stored, self.storage_width, "stored pattern"
        )
        shift = np.uint64(self._unprotected_bits)
        low = stored & np.uint64(self._low_mask)
        high = self._code.decode_data_array(stored >> shift)
        return low | (high << shift)

    def residual_error_positions(
        self, row: int, fault_columns: Sequence[int]
    ) -> List[int]:
        """Unprotected LSB faults always remain; a single protected fault is corrected.

        Faults at positions below the protection boundary hit unprotected
        cells and corrupt their bit directly.  Faults at or above it hit the
        protected codeword: one such fault is corrected by the SECDED decoder,
        two or more are only detected and every affected bit may be wrong.
        """
        self._check_fault_columns(fault_columns)
        unique = sorted(set(fault_columns))
        low_faults = [c for c in unique if c < self._unprotected_bits]
        high_faults = [c for c in unique if c >= self._unprotected_bits]
        if len(high_faults) <= 1:
            high_faults = []
        return sorted(low_faults + high_faults)
