"""Baseline scheme: raw, unprotected storage.

Every fault corrupts exactly the data bit stored in the faulty cell, so the
error magnitude of a fault at bit position ``b`` is ``2**b`` -- up to ``2**31``
for the MSB of a 32-bit word.  This is the "No Correction" curve of Figs. 5
and 7.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.base import ProtectionScheme

__all__ = ["NoProtection"]


class NoProtection(ProtectionScheme):
    """Identity write/read path with zero storage overhead."""

    @property
    def name(self) -> str:
        """Scheme name used in reports."""
        return "no-protection"

    @property
    def extra_columns(self) -> int:
        """No extra storage is required."""
        return 0

    def encode_word(self, row: int, data: int) -> int:
        """Store the data word unchanged."""
        self._check_data(data)
        return data

    def decode_word(self, row: int, stored: int) -> int:
        """Return the read-out pattern unchanged."""
        if stored < 0 or stored >> self.word_width:
            raise ValueError(f"stored pattern does not fit in {self.word_width} bits")
        return stored

    def encode_words(self, rows: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Vectorised identity write path."""
        _rows, data = self._check_batch(rows, data, self.word_width, "data")
        return data.copy()

    def decode_words(self, rows: np.ndarray, stored: np.ndarray) -> np.ndarray:
        """Vectorised identity read path."""
        _rows, stored = self._check_batch(
            rows, stored, self.storage_width, "stored pattern"
        )
        return stored.copy()

    def residual_error_positions(
        self, row: int, fault_columns: Sequence[int]
    ) -> List[int]:
        """Every fault remains at its physical position."""
        self._check_fault_columns(fault_columns)
        return sorted(set(fault_columns))
