"""Fault-map look-up table (FM-LUT) of the bit-shuffling scheme.

The FM-LUT holds one ``nFM``-bit entry per memory row.  Each entry records the
index of the word segment that contains the row's faulty cell, which via
Eq. 2 determines the circular rotation applied on every write and undone on
every read.  In the paper's straightforward hardware realisation the LUT is
implemented as ``nFM`` extra bit columns of the array; alternative
realisations (register file, CAM) change the overhead model but not the
behaviour captured here.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.segments import (
    rotation_amount,
    segment_index,
    segment_size,
)

__all__ = ["FaultMapLut"]


class FaultMapLut:
    """Per-row segment indices driving the bit-shuffling rotations.

    Parameters
    ----------
    rows:
        Number of memory rows covered.
    word_width:
        Data word width ``W``.
    n_fm:
        Number of LUT bits per row (1..ceil(log2 W)), setting the segment
        granularity of the scheme.
    """

    def __init__(self, rows: int, word_width: int, n_fm: int) -> None:
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        # segment_size validates n_fm against word_width.
        self._segment_size = segment_size(word_width, n_fm)
        self._rows = rows
        self._word_width = word_width
        self._n_fm = n_fm
        self._entries = np.zeros(rows, dtype=np.int64)
        # Cached read-only views for the batch datapath; recomputing the
        # rotation vector on every encode/decode call was measurable per-call
        # setup, so it is invalidated on mutation instead (see _invalidate).
        self._rotations_cache: np.ndarray | None = None
        self._entries_view: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> int:
        """Number of rows covered by the LUT."""
        return self._rows

    @property
    def word_width(self) -> int:
        """Data word width ``W``."""
        return self._word_width

    @property
    def n_fm(self) -> int:
        """LUT bits per row ``nFM``."""
        return self._n_fm

    @property
    def segment_size(self) -> int:
        """Segment size ``S = W / 2**nFM`` (Eq. 1)."""
        return self._segment_size

    @property
    def segment_count(self) -> int:
        """Number of segments ``2**nFM``."""
        return 1 << self._n_fm

    @property
    def storage_bits(self) -> int:
        """Total LUT storage, ``rows * nFM`` bits (the extra columns of Fig. 3)."""
        return self._rows * self._n_fm

    # ------------------------------------------------------------------ #
    # Entry access
    # ------------------------------------------------------------------ #
    def entry(self, row: int) -> int:
        """The programmed segment index ``xFM(row)``."""
        self._check_row(row)
        return int(self._entries[row])

    def set_entry(self, row: int, x_fm: int) -> None:
        """Directly program ``xFM(row)`` (normally done via :meth:`program_row`)."""
        self._check_row(row)
        if not 0 <= x_fm < self.segment_count:
            raise ValueError(
                f"xFM {x_fm} out of range [0, {self.segment_count}) for nFM={self._n_fm}"
            )
        self._entries[row] = x_fm
        self._invalidate()

    def rotation(self, row: int) -> int:
        """Right-rotation amount ``T(row)`` for the programmed entry (Eq. 2)."""
        return rotation_amount(self.entry(row), self._word_width, self._n_fm)

    def entries(self) -> np.ndarray:
        """Copy of all programmed entries (index = row)."""
        return self._entries.copy()

    def rotations(self) -> np.ndarray:
        """Vector of rotation amounts for every row (used by the bulk simulator)."""
        s = self._segment_size
        segments = self.segment_count
        return ((segments - self._entries) * s) % self._word_width

    def entries_view(self) -> np.ndarray:
        """Cached read-only view of all entries for the batch datapath."""
        if self._entries_view is None:
            view = self._entries.view()
            view.flags.writeable = False
            self._entries_view = view
        return self._entries_view

    def rotations_view(self) -> np.ndarray:
        """Cached read-only rotation vector (recomputed only after mutation)."""
        if self._rotations_cache is None:
            rotations = self.rotations()
            rotations.flags.writeable = False
            self._rotations_cache = rotations
        return self._rotations_cache

    def _invalidate(self) -> None:
        self._rotations_cache = None

    def __getstate__(self) -> dict:
        # Copies (deepcopy/pickle) must not carry the cached views: a copied
        # view would otherwise alias the *original* entry array.
        state = self.__dict__.copy()
        state["_rotations_cache"] = None
        state["_entries_view"] = None
        return state

    # ------------------------------------------------------------------ #
    # Programming from BIST results
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear every entry to ``xFM = 0`` (the no-rotation state)."""
        self._entries[:] = 0
        self._invalidate()

    def program_row(self, row: int, fault_columns: Sequence[int]) -> None:
        """Program ``xFM(row)`` from the faulty bit positions BIST found in the row.

        With a single fault the entry is simply the fault's segment index.
        With multiple faults a single rotation cannot push every fault into the
        lowest segment; the hardware-realistic policy implemented here selects
        the segment of the *most significant* faulty bit, so the fault with the
        largest potential error magnitude is the one neutralised.
        """
        self._check_row(row)
        if not fault_columns:
            self._entries[row] = 0
            self._invalidate()
            return
        for column in fault_columns:
            if not 0 <= column < self._word_width:
                raise ValueError(
                    f"fault column {column} out of range [0, {self._word_width})"
                )
        most_significant = max(fault_columns)
        self._entries[row] = segment_index(
            most_significant, self._word_width, self._n_fm
        )
        self._invalidate()

    def program(self, fault_columns_by_row: Mapping[int, Sequence[int]]) -> None:
        """Program the whole LUT from a BIST fault report (row -> fault columns)."""
        self._entries[:] = 0
        self._invalidate()
        for row, columns in fault_columns_by_row.items():
            self.program_row(row, columns)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._rows:
            raise IndexError(f"row {row} out of range [0, {self._rows})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultMapLut(rows={self._rows}, W={self._word_width}, "
            f"nFM={self._n_fm}, S={self._segment_size})"
        )
