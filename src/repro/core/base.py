"""Abstract interface shared by every memory-protection scheme."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["ProtectionScheme"]


class ProtectionScheme(ABC):
    """A write-path / read-path transformation protecting words in a faulty memory.

    A scheme may add extra storage columns per row (ECC parity bits, FM-LUT
    entries).  The bit-accurate flow is::

        scheme.program(fault_columns_by_row)      # from BIST, once per die
        stored = scheme.encode_word(row, data)    # on every write
        ...faults corrupt ``stored``...
        data'  = scheme.decode_word(row, observed)  # on every read

    Simulation sweeps push whole memory pages through that flow at once via
    the *batch* view, :meth:`encode_words` / :meth:`decode_words`, which
    operate on parallel ``uint64`` arrays of row indices and word patterns.
    The base class provides a generic (bit-exact but slow) fallback that loops
    over the scalar methods; concrete schemes override it with true NumPy
    vectorisation.  Both views must agree bit-for-bit — the batch methods are
    an implementation of the scalar contract, never a different code.

    The analytical flow used by the Monte-Carlo yield model asks a single
    question per row: *given faults at these physical data-bit positions, which
    logical data bits can still be wrong after mitigation?*  That is
    :meth:`residual_error_positions`.
    """

    def __init__(self, word_width: int) -> None:
        if word_width <= 0:
            raise ValueError(f"word_width must be positive, got {word_width}")
        self._word_width = word_width

    # ------------------------------------------------------------------ #
    # Static properties
    # ------------------------------------------------------------------ #
    @property
    def word_width(self) -> int:
        """Width of the logical data word the scheme protects."""
        return self._word_width

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable scheme name used in reports and figures."""

    @property
    @abstractmethod
    def extra_columns(self) -> int:
        """Extra storage bits required per row (parity bits, FM-LUT bits)."""

    @property
    def storage_width(self) -> int:
        """Total stored bits per row: data plus any scheme overhead."""
        return self._word_width + self.extra_columns

    @property
    def has_die_state(self) -> bool:
        """Whether :meth:`program` mutates per-die state inside the scheme.

        Stateless schemes (plain ECC, no protection) can safely be shared
        between simulation containers; stateful ones (an FM-LUT programmed per
        die) must be copied per container.  The default is conservative: any
        scheme that overrides :meth:`program` is assumed stateful unless it
        overrides this property too.
        """
        return type(self).program is not ProtectionScheme.program

    # ------------------------------------------------------------------ #
    # Die-specific programming
    # ------------------------------------------------------------------ #
    def program(self, fault_columns_by_row: Mapping[int, Sequence[int]]) -> None:
        """Configure the scheme for a specific die from BIST fault locations.

        ``fault_columns_by_row`` maps row index to the faulty data-bit
        positions found by BIST.  Schemes that do not need die-specific state
        (plain ECC, no protection) ignore the call.
        """

    # ------------------------------------------------------------------ #
    # Operational (bit-accurate) view
    # ------------------------------------------------------------------ #
    @abstractmethod
    def encode_word(self, row: int, data: int) -> int:
        """Transform ``data`` (``word_width`` bits) into the stored pattern
        (``storage_width`` bits) for ``row``."""

    @abstractmethod
    def decode_word(self, row: int, stored: int) -> int:
        """Recover the logical data word from the (possibly corrupted) stored
        pattern read from ``row``."""

    # ------------------------------------------------------------------ #
    # Operational (batch) view
    # ------------------------------------------------------------------ #
    def encode_words(self, rows: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Batch :meth:`encode_word`: encode ``data[i]`` for ``rows[i]``.

        ``rows`` and ``data`` are parallel one-dimensional arrays; the result
        is a ``uint64`` array of stored patterns.  The generic implementation
        loops over the scalar method and is overridden with vectorised code by
        every concrete scheme.
        """
        rows, data = self._check_batch(rows, data, self._word_width, "data")
        out = np.empty(rows.size, dtype=np.uint64)
        for i in range(rows.size):
            out[i] = self.encode_word(int(rows[i]), int(data[i]))
        return out

    def decode_words(self, rows: np.ndarray, stored: np.ndarray) -> np.ndarray:
        """Batch :meth:`decode_word`: decode ``stored[i]`` read from ``rows[i]``.

        Returns a ``uint64`` array of recovered logical data words.
        """
        rows, stored = self._check_batch(
            rows, stored, self.storage_width, "stored pattern"
        )
        out = np.empty(rows.size, dtype=np.uint64)
        for i in range(rows.size):
            out[i] = self.decode_word(int(rows[i]), int(stored[i]))
        return out

    def _check_batch(
        self, rows: np.ndarray, patterns: np.ndarray, width: int, what: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate and normalise a (rows, patterns) batch to int64/uint64.

        Patterns are ``uint64``, so ``width`` may not exceed 64; individual
        schemes can be stricter (the rotation and 2's-complement helpers in
        :mod:`repro.memory.words` top out at 63-bit data words and raise
        their own errors).
        """
        if width > 64:
            raise ValueError(
                f"batch datapath supports storage widths up to 64 bits, "
                f"got {width}"
            )
        rows = np.asarray(rows, dtype=np.int64)
        patterns = np.asarray(patterns, dtype=np.uint64)
        if rows.ndim != 1 or patterns.ndim != 1:
            raise ValueError("batch rows and patterns must be one-dimensional")
        if rows.shape != patterns.shape:
            raise ValueError(
                f"batch rows and patterns must have equal length, got "
                f"{rows.size} and {patterns.size}"
            )
        if width < 64 and patterns.size and np.any(
            patterns > np.uint64((1 << width) - 1)
        ):
            raise ValueError(f"{what} does not fit in {width} bits")
        return rows, patterns

    # ------------------------------------------------------------------ #
    # Analytical view
    # ------------------------------------------------------------------ #
    @abstractmethod
    def residual_error_positions(
        self, row: int, fault_columns: Sequence[int]
    ) -> List[int]:
        """Logical data-bit positions that can still be corrupted after mitigation.

        ``fault_columns`` are the physical positions (0 = LSB cell) of faulty
        cells in the row's *data* columns, matching the paper's fault-injection
        setup where the M = R x W data cells are the fault population.  The
        returned list may be empty (all faults neutralised), and its entries
        are the positions whose weight ``2**b`` enters the local MSE (Eq. 6).
        """

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def worst_case_error_magnitude(self, fault_column: int) -> int:
        """Worst-case output error magnitude caused by one fault at ``fault_column``.

        Default implementation: the largest weight among residual positions for
        a single fault, assuming 2's-complement data (weight ``2**b``).
        """
        positions = self.residual_error_positions(0, [fault_column])
        if not positions:
            return 0
        return max(1 << b for b in positions)

    def _check_data(self, data: int) -> None:
        if data < 0 or data >> self._word_width:
            raise ValueError(
                f"data {data:#x} does not fit in {self._word_width} bits"
            )

    def _check_fault_columns(self, fault_columns: Sequence[int]) -> None:
        for column in fault_columns:
            if not 0 <= column < self._word_width:
                raise ValueError(
                    f"fault column {column} out of range [0, {self._word_width})"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(word_width={self._word_width})"
