"""Abstract interface shared by every memory-protection scheme."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Sequence

__all__ = ["ProtectionScheme"]


class ProtectionScheme(ABC):
    """A write-path / read-path transformation protecting words in a faulty memory.

    A scheme may add extra storage columns per row (ECC parity bits, FM-LUT
    entries).  The bit-accurate flow is::

        scheme.program(fault_columns_by_row)      # from BIST, once per die
        stored = scheme.encode_word(row, data)    # on every write
        ...faults corrupt ``stored``...
        data'  = scheme.decode_word(row, observed)  # on every read

    The analytical flow used by the Monte-Carlo yield model asks a single
    question per row: *given faults at these physical data-bit positions, which
    logical data bits can still be wrong after mitigation?*  That is
    :meth:`residual_error_positions`.
    """

    def __init__(self, word_width: int) -> None:
        if word_width <= 0:
            raise ValueError(f"word_width must be positive, got {word_width}")
        self._word_width = word_width

    # ------------------------------------------------------------------ #
    # Static properties
    # ------------------------------------------------------------------ #
    @property
    def word_width(self) -> int:
        """Width of the logical data word the scheme protects."""
        return self._word_width

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable scheme name used in reports and figures."""

    @property
    @abstractmethod
    def extra_columns(self) -> int:
        """Extra storage bits required per row (parity bits, FM-LUT bits)."""

    @property
    def storage_width(self) -> int:
        """Total stored bits per row: data plus any scheme overhead."""
        return self._word_width + self.extra_columns

    # ------------------------------------------------------------------ #
    # Die-specific programming
    # ------------------------------------------------------------------ #
    def program(self, fault_columns_by_row: Mapping[int, Sequence[int]]) -> None:
        """Configure the scheme for a specific die from BIST fault locations.

        ``fault_columns_by_row`` maps row index to the faulty data-bit
        positions found by BIST.  Schemes that do not need die-specific state
        (plain ECC, no protection) ignore the call.
        """

    # ------------------------------------------------------------------ #
    # Operational (bit-accurate) view
    # ------------------------------------------------------------------ #
    @abstractmethod
    def encode_word(self, row: int, data: int) -> int:
        """Transform ``data`` (``word_width`` bits) into the stored pattern
        (``storage_width`` bits) for ``row``."""

    @abstractmethod
    def decode_word(self, row: int, stored: int) -> int:
        """Recover the logical data word from the (possibly corrupted) stored
        pattern read from ``row``."""

    # ------------------------------------------------------------------ #
    # Analytical view
    # ------------------------------------------------------------------ #
    @abstractmethod
    def residual_error_positions(
        self, row: int, fault_columns: Sequence[int]
    ) -> List[int]:
        """Logical data-bit positions that can still be corrupted after mitigation.

        ``fault_columns`` are the physical positions (0 = LSB cell) of faulty
        cells in the row's *data* columns, matching the paper's fault-injection
        setup where the M = R x W data cells are the fault population.  The
        returned list may be empty (all faults neutralised), and its entries
        are the positions whose weight ``2**b`` enters the local MSE (Eq. 6).
        """

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def worst_case_error_magnitude(self, fault_column: int) -> int:
        """Worst-case output error magnitude caused by one fault at ``fault_column``.

        Default implementation: the largest weight among residual positions for
        a single fault, assuming 2's-complement data (weight ``2**b``).
        """
        positions = self.residual_error_positions(0, [fault_column])
        if not positions:
            return 0
        return max(1 << b for b in positions)

    def _check_data(self, data: int) -> None:
        if data < 0 or data >> self._word_width:
            raise ValueError(
                f"data {data:#x} does not fit in {self._word_width} bits"
            )

    def _check_fault_columns(self, fault_columns: Sequence[int]) -> None:
        for column in fault_columns:
            if not 0 <= column < self._word_width:
                raise ValueError(
                    f"fault column {column} out of range [0, {self._word_width})"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(word_width={self._word_width})"
