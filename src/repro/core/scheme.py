"""The paper's contribution: the bit-shuffling protection scheme.

On every write the data word is right-circular-rotated by ``T(r)`` (Eq. 2) so
that the least-significant segment of the word is stored in the row's faulty
cell; on every read the rotation is undone.  The per-row rotation is derived
from an ``nFM``-bit FM-LUT entry programmed from BIST fault locations.  A
single fault per row is therefore guaranteed to corrupt only a bit of the
lowest-significance segment, bounding its error magnitude by ``2**(S-1)``
with ``S = W / 2**nFM`` (Eq. 1).

Multi-fault rows expose a policy choice, because one rotation cannot push two
faults in different segments into the lowest segment simultaneously:

``"most-significant"`` (default, matches the simplest hardware)
    Neutralise the fault with the largest potential error magnitude.
``"minimax"``
    Search all ``2**nFM`` LUT values and pick the one minimising the largest
    residual error weight across all faults in the row.  This is the ablation
    called out in DESIGN.md; it needs a slightly smarter BIST post-processing
    step but identical datapath hardware.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import ProtectionScheme
from repro.core.fault_map_lut import FaultMapLut
from repro.core.segments import rotation_amount, segment_index, segment_size
from repro.core.shuffler import BitShuffler

__all__ = ["BitShuffleScheme"]

_POLICIES = ("most-significant", "minimax")


class BitShuffleScheme(ProtectionScheme):
    """Significance-driven fault mitigation via FM-LUT controlled rotations.

    Parameters
    ----------
    word_width:
        Data word width ``W`` (32 in the paper).
    n_fm:
        FM-LUT bits per row, 1..ceil(log2 W).  Larger values shrink the
        segment size and the residual error at the cost of more LUT storage
        and a wider shifter control.
    rows:
        Number of memory rows the scheme will serve.  Required before
        :meth:`program`/:meth:`encode_word` can be used; may also be provided
        later via :meth:`attach_rows`.
    multi_fault_policy:
        How to choose the LUT entry for rows with more than one fault (see
        module docstring).
    """

    def __init__(
        self,
        word_width: int = 32,
        n_fm: int = 1,
        rows: Optional[int] = None,
        multi_fault_policy: str = "most-significant",
    ) -> None:
        super().__init__(word_width)
        if multi_fault_policy not in _POLICIES:
            raise ValueError(
                f"multi_fault_policy must be one of {_POLICIES}, got "
                f"{multi_fault_policy!r}"
            )
        # segment_size validates n_fm.
        self._segment_size = segment_size(word_width, n_fm)
        self._n_fm = n_fm
        self._policy = multi_fault_policy
        self._shuffler = BitShuffler(word_width)
        self._lut: Optional[FaultMapLut] = None
        if rows is not None:
            self.attach_rows(rows)

    # ------------------------------------------------------------------ #
    # Static properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Scheme name used in reports, e.g. ``"bit-shuffle-nfm2"``."""
        return f"bit-shuffle-nfm{self._n_fm}"

    @property
    def n_fm(self) -> int:
        """FM-LUT bits per row."""
        return self._n_fm

    @property
    def segment_size(self) -> int:
        """Segment size ``S`` (Eq. 1)."""
        return self._segment_size

    @property
    def multi_fault_policy(self) -> str:
        """Active policy for rows with multiple faults."""
        return self._policy

    @property
    def extra_columns(self) -> int:
        """The FM-LUT adds ``nFM`` bit columns per row."""
        return self._n_fm

    @property
    def lut(self) -> FaultMapLut:
        """The programmed FM-LUT (raises if rows were never attached)."""
        if self._lut is None:
            raise RuntimeError(
                "BitShuffleScheme has no FM-LUT yet; construct with rows= or "
                "call attach_rows() first"
            )
        return self._lut

    # ------------------------------------------------------------------ #
    # Die-specific programming
    # ------------------------------------------------------------------ #
    def attach_rows(self, rows: int) -> None:
        """Allocate a fresh (all-zero) FM-LUT for a memory of ``rows`` rows."""
        self._lut = FaultMapLut(rows, self.word_width, self._n_fm)

    def program(self, fault_columns_by_row: Mapping[int, Sequence[int]]) -> None:
        """Program the FM-LUT from BIST fault locations (row -> fault columns)."""
        lut = self.lut
        # Reset, then program only faulty rows; healthy rows keep xFM = 0.
        lut.reset()
        for row, columns in fault_columns_by_row.items():
            lut.set_entry(row, self._select_entry(columns))

    def _select_entry(self, fault_columns: Sequence[int]) -> int:
        """Choose the LUT entry for one row according to the multi-fault policy."""
        self._check_fault_columns(fault_columns)
        if not fault_columns:
            return 0
        if self._policy == "most-significant" or len(set(fault_columns)) == 1:
            return segment_index(max(fault_columns), self.word_width, self._n_fm)
        best_entry = 0
        best_cost = None
        for candidate in range(1 << self._n_fm):
            rotation = rotation_amount(candidate, self.word_width, self._n_fm)
            worst = max(
                (column + rotation) % self.word_width for column in fault_columns
            )
            if best_cost is None or worst < best_cost:
                best_cost = worst
                best_entry = candidate
        return best_entry

    # ------------------------------------------------------------------ #
    # Operational view
    # ------------------------------------------------------------------ #
    def encode_word(self, row: int, data: int) -> int:
        """Rotate the data word per the row's LUT entry; append the entry bits.

        The returned pattern is ``storage_width`` bits wide: the rotated data
        occupies the ``word_width`` data columns and the FM-LUT entry occupies
        the ``nFM`` extra columns, mirroring the in-array LUT realisation of
        Fig. 3.
        """
        self._check_data(data)
        lut = self.lut
        rotation = lut.rotation(row)
        shuffled = self._shuffler.shuffle(data, rotation)
        return shuffled | (lut.entry(row) << self.word_width)

    def decode_word(self, row: int, stored: int) -> int:
        """Undo the rotation recorded in the FM-LUT for ``row``."""
        if stored < 0 or stored >> self.storage_width:
            raise ValueError(
                f"stored pattern does not fit in {self.storage_width} bits"
            )
        data_part = stored & ((1 << self.word_width) - 1)
        rotation = self.lut.rotation(row)
        return self._shuffler.unshuffle(data_part, rotation)

    # ------------------------------------------------------------------ #
    # Operational (batch) view
    # ------------------------------------------------------------------ #
    def _check_rows(self, rows: np.ndarray) -> None:
        lut = self.lut
        if rows.size and (rows.min() < 0 or rows.max() >= lut.rows):
            raise IndexError(f"row index out of range [0, {lut.rows})")

    def encode_words(self, rows: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Vectorised write path: gather per-row rotations, rotate, append entries.

        Runs on the active kernel backend; the LUT tables are cached read-only
        views, so no per-call table rebuild happens on the hot path.
        """
        rows, data = self._check_batch(rows, data, self.word_width, "data")
        self._check_rows(rows)
        lut = self.lut
        from repro.kernels import active_backend

        return active_backend().fmlut_encode(
            data, rows, lut.entries_view(), lut.rotations_view(), self.word_width
        )

    def decode_words(self, rows: np.ndarray, stored: np.ndarray) -> np.ndarray:
        """Vectorised read path: strip the LUT columns and undo the rotations."""
        rows, stored = self._check_batch(
            rows, stored, self.storage_width, "stored pattern"
        )
        self._check_rows(rows)
        from repro.kernels import active_backend

        return active_backend().fmlut_decode(
            stored, rows, self.lut.rotations_view(), self.word_width
        )

    # ------------------------------------------------------------------ #
    # Analytical view
    # ------------------------------------------------------------------ #
    def residual_error_positions(
        self, row: int, fault_columns: Sequence[int]
    ) -> List[int]:
        """Logical positions that remain vulnerable after the rotation.

        Assumes the FM-LUT was programmed (via BIST) for exactly these faults,
        which is the paper's operating model.  A physical fault at column ``c``
        corrupts logical bit ``(c + T) mod W``; for a single fault this is
        ``c mod S`` and the error magnitude is bounded by ``2**(S-1)``.
        """
        self._check_fault_columns(fault_columns)
        if not fault_columns:
            return []
        entry = self._select_entry(fault_columns)
        rotation = rotation_amount(entry, self.word_width, self._n_fm)
        return sorted(
            {(column + rotation) % self.word_width for column in fault_columns}
        )
