"""Segment arithmetic of the bit-shuffling scheme (Eqs. 1 and 2, Fig. 4).

The fault-map LUT stores ``nFM`` bits per row.  Those bits index one of
``2**nFM`` equally sized *segments* of the data word:

* segment size (Eq. 1):   ``S = W / 2**nFM``
* rotation amount (Eq. 2): ``T(r) = S * (2**nFM - xFM(r))``

After the write-path right rotation by ``T(r)``, the faulty cell at physical
position ``c`` ends up holding logical data bit ``c mod S`` (a bit of the
least significant segment), so the worst-case error magnitude of any single
fault is ``2**(S-1)``.

These helpers are pure functions on integers; they are shared by the
operational scheme, the analytical yield model and the Fig. 4 benchmark.
"""

from __future__ import annotations


import numpy as np

__all__ = [
    "max_lut_bits",
    "segment_size",
    "segment_index",
    "rotation_amount",
    "error_magnitude_for_fault",
    "error_magnitude_profile",
    "worst_case_error_magnitude",
]


def max_lut_bits(word_width: int) -> int:
    """Largest meaningful ``nFM`` for a word of ``word_width`` bits: ceil(log2 W)."""
    if word_width <= 0:
        raise ValueError(f"word_width must be positive, got {word_width}")
    return int(np.ceil(np.log2(word_width)))


def _check_nfm(n_fm: int, word_width: int) -> None:
    if not 1 <= n_fm <= max_lut_bits(word_width):
        raise ValueError(
            f"nFM must be in [1, {max_lut_bits(word_width)}] for a "
            f"{word_width}-bit word, got {n_fm}"
        )
    if word_width % (1 << n_fm) != 0:
        raise ValueError(
            f"word width {word_width} is not divisible into 2**{n_fm} segments"
        )


def segment_size(word_width: int, n_fm: int) -> int:
    """Segment size ``S = W / 2**nFM`` (Eq. 1)."""
    _check_nfm(n_fm, word_width)
    return word_width // (1 << n_fm)


def segment_index(fault_column: int, word_width: int, n_fm: int) -> int:
    """FM-LUT entry ``xFM`` for a fault at physical bit position ``fault_column``."""
    if not 0 <= fault_column < word_width:
        raise ValueError(
            f"fault column {fault_column} out of range [0, {word_width})"
        )
    return fault_column // segment_size(word_width, n_fm)


def rotation_amount(x_fm: int, word_width: int, n_fm: int) -> int:
    """Right-rotation ``T = S * (2**nFM - xFM)`` reduced modulo ``W`` (Eq. 2).

    ``xFM = 0`` yields ``T = W``, i.e. no rotation, which the modulo reduction
    makes explicit.
    """
    segments = 1 << n_fm
    if not 0 <= x_fm < segments:
        raise ValueError(f"xFM {x_fm} out of range [0, {segments})")
    s = segment_size(word_width, n_fm)
    return (s * (segments - x_fm)) % word_width


def error_magnitude_for_fault(fault_column: int, word_width: int, n_fm: int) -> int:
    """Worst-case error magnitude of a single fault at ``fault_column`` after shuffling.

    With the rotation of Eq. 2 programmed for this fault, the faulty cell holds
    logical bit ``fault_column mod S``, so the error magnitude is
    ``2**(fault_column mod S)`` (the data points of Fig. 4).
    """
    s = segment_size(word_width, n_fm)
    if not 0 <= fault_column < word_width:
        raise ValueError(
            f"fault column {fault_column} out of range [0, {word_width})"
        )
    return 1 << (fault_column % s)


def error_magnitude_profile(word_width: int, n_fm: int) -> np.ndarray:
    """Error magnitude versus faulty bit position for one ``nFM`` (a Fig. 4 series)."""
    return np.array(
        [error_magnitude_for_fault(c, word_width, n_fm) for c in range(word_width)],
        dtype=np.float64,
    )


def unprotected_error_magnitude_profile(word_width: int) -> np.ndarray:
    """Error magnitude versus faulty bit position with no correction (Fig. 4 reference)."""
    return np.array([float(1 << c) for c in range(word_width)], dtype=np.float64)


def worst_case_error_magnitude(word_width: int, n_fm: int) -> int:
    """Upper bound ``2**(S-1)`` on the error magnitude of any single fault."""
    s = segment_size(word_width, n_fm)
    return 1 << (s - 1)
