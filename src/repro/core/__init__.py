"""Protection schemes: the paper's bit-shuffling contribution and its baselines.

Every scheme implements the :class:`~repro.core.base.ProtectionScheme`
interface with two complementary views:

* an *operational* view used by the bit-accurate
  :class:`~repro.memory.controller.ProtectedMemory`: scalar ``encode_word`` /
  ``decode_word``, plus the bit-exact vectorised batch form ``encode_words`` /
  ``decode_words`` that the simulation datapath runs on, and
* an *analytical* view (``residual_error_positions``) used by the fast
  Monte-Carlo yield model behind Fig. 5 and Fig. 7, which only needs to know
  which logical data bits can still be corrupted for a given set of physical
  fault positions.

Available schemes:

* :class:`NoProtection` -- raw storage, every fault corrupts its bit.
* :class:`SecdedScheme` -- full-word SECDED Hamming code (H(39,32) for 32-bit
  data), the conventional baseline.
* :class:`PriorityEccScheme` -- priority-based ECC: SECDED on the MSB half of
  each word only (H(22,16) for 32-bit data), the prior-art baseline.
* :class:`BitShuffleScheme` -- the paper's contribution: an FM-LUT records the
  faulty segment of each row and the data word is circularly rotated so only
  the least significant segment can be corrupted.
"""

from repro.core.base import ProtectionScheme
from repro.core.fault_map_lut import FaultMapLut
from repro.core.no_protection import NoProtection
from repro.core.priority_ecc import PriorityEccScheme
from repro.core.scheme import BitShuffleScheme
from repro.core.secded_scheme import SecdedScheme
from repro.core.segments import (
    error_magnitude_for_fault,
    error_magnitude_profile,
    rotation_amount,
    segment_index,
    segment_size,
    worst_case_error_magnitude,
)
from repro.core.shuffler import BitShuffler

__all__ = [
    "BitShuffleScheme",
    "BitShuffler",
    "FaultMapLut",
    "NoProtection",
    "PriorityEccScheme",
    "ProtectionScheme",
    "SecdedScheme",
    "error_magnitude_for_fault",
    "error_magnitude_profile",
    "rotation_amount",
    "segment_index",
    "segment_size",
    "worst_case_error_magnitude",
]
