"""Baseline scheme: full-word SECDED Hamming ECC (H(39,32) for 32-bit data).

Every write encodes the whole data word into an extended-Hamming codeword with
``c`` parity bits stored in extra columns; every read decodes the codeword,
correcting any single bit error and detecting double errors.  This is the
conventional, overhead-heavy baseline against which the paper normalises all
of Fig. 6.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.base import ProtectionScheme
from repro.ecc.hamming import DecodeStatus, SecdedCode, secded_code_for_data_bits

__all__ = ["SecdedScheme"]


class SecdedScheme(ProtectionScheme):
    """Full-word single-error-correct / double-error-detect Hamming protection."""

    def __init__(self, word_width: int = 32) -> None:
        super().__init__(word_width)
        self._code = secded_code_for_data_bits(word_width)

    @property
    def code(self) -> SecdedCode:
        """The underlying SECDED code (H(39,32) for the paper's 32-bit words)."""
        return self._code

    @property
    def name(self) -> str:
        """Scheme name used in reports, e.g. ``"secded-H(39,32)"``."""
        return f"secded-{self._code.name}"

    @property
    def extra_columns(self) -> int:
        """Parity columns added to the array (7 for H(39,32))."""
        return self._code.parity_bits

    def encode_word(self, row: int, data: int) -> int:
        """Encode the data word into a codeword pattern of ``storage_width`` bits."""
        self._check_data(data)
        return self._code.encode(data)

    def decode_word(self, row: int, stored: int) -> int:
        """Decode a (possibly corrupted) codeword; single errors are corrected."""
        return self._code.decode(stored).data

    def encode_words(self, rows: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Vectorised encode: the parity-check matrix applied to whole arrays.

        Runs on the active :mod:`repro.kernels` backend via the code's batch
        methods; the codeword layout is hoisted into the code's construction-
        time kernel spec, so no per-call setup remains.
        """
        _rows, data = self._check_batch(rows, data, self.word_width, "data")
        return self._code.encode_array(data)

    def decode_words(self, rows: np.ndarray, stored: np.ndarray) -> np.ndarray:
        """Vectorised syndrome decode with single-error correction."""
        _rows, stored = self._check_batch(
            rows, stored, self.storage_width, "stored pattern"
        )
        return self._code.decode_data_array(stored)

    def decode_status(self, stored: int) -> DecodeStatus:
        """Expose the decoder's error classification (used in tests and analysis)."""
        return self._code.decode(stored).status

    def residual_error_positions(
        self, row: int, fault_columns: Sequence[int]
    ) -> List[int]:
        """A single fault per word is corrected; multiple faults all remain.

        The analytical model considers faults striking the cells that hold the
        data bits (the paper's 16 kB fault population).  With one fault the
        SECDED decoder removes it; with two or more the decoder only detects
        the error and the read path delivers the uncorrected word, so every
        faulty data bit may be wrong.
        """
        self._check_fault_columns(fault_columns)
        unique = sorted(set(fault_columns))
        if len(unique) <= 1:
            return []
        return unique
