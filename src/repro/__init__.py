"""repro -- reproduction of "Mitigating the Impact of Faults in Unreliable
Memories for Error-Resilient Applications" (Ganapathy et al., DAC 2015).

The package implements the paper's bit-shuffling fault-mitigation scheme,
its ECC baselines, the SRAM fault substrate they protect, the quality-aware
yield model, the 28 nm read-path overhead model, and the data-mining
application study -- everything required to regenerate the paper's figures
and tables.  See :mod:`repro.analysis` for one entry point per experiment and
the README for a guided tour.

Quick example::

    import numpy as np
    from repro import (
        BitShuffleScheme, FaultMap, MemoryOrganization, ProtectedMemory,
    )

    org = MemoryOrganization.paper_16kb()
    rng = np.random.default_rng(1)
    die = FaultMap.random_with_pcell(org, p_cell=1e-3, rng=rng)
    memory = ProtectedMemory(org, BitShuffleScheme(org.word_width, n_fm=2), die)
    memory.write_int(0, -123456)
    assert abs(memory.read_int(0) + 123456) <= 2 ** 16  # bounded low-order error
"""

from repro.core import (
    BitShuffleScheme,
    BitShuffler,
    FaultMapLut,
    NoProtection,
    PriorityEccScheme,
    ProtectionScheme,
    SecdedScheme,
)
from repro.ecc import SecdedCode
from repro.faultmodel import (
    AgingDie,
    AgingModel,
    FaultMapSampler,
    MseDistribution,
    PcellModel,
    VoltageScalableDie,
    YieldAnalyzer,
    classical_yield,
)
from repro.hardware import (
    OverheadModel,
    OverheadReport,
    Technology,
    VoltageScalingModel,
    WritePathOverhead,
)
from repro.memory import (
    FaultKind,
    RedundancyRepair,
    repair_yield,
    spares_for_yield_target,
    FaultMap,
    FaultSite,
    MemoryOrganization,
    ProtectedMemory,
    SramArray,
)
from repro.quality import WeightedEcdf, mse_of_fault_map
from repro.quantize import FixedPointFormat
from repro.sim import (
    BenchmarkDefinition,
    FaultyTensorStore,
    QualityDistribution,
    QualityExperimentRunner,
    standard_benchmarks,
)
from repro.dse import (
    DesignSpaceExplorer,
    DseResult,
    ExperimentSpec,
)

__version__ = "1.0.0"

__all__ = [
    "AgingDie",
    "AgingModel",
    "BenchmarkDefinition",
    "BitShuffleScheme",
    "BitShuffler",
    "DesignSpaceExplorer",
    "DseResult",
    "ExperimentSpec",
    "FaultKind",
    "FaultMap",
    "FaultMapLut",
    "FaultMapSampler",
    "FaultSite",
    "FaultyTensorStore",
    "FixedPointFormat",
    "MemoryOrganization",
    "MseDistribution",
    "NoProtection",
    "OverheadModel",
    "OverheadReport",
    "PcellModel",
    "PriorityEccScheme",
    "ProtectedMemory",
    "ProtectionScheme",
    "QualityDistribution",
    "QualityExperimentRunner",
    "RedundancyRepair",
    "SecdedCode",
    "SecdedScheme",
    "SramArray",
    "Technology",
    "VoltageScalableDie",
    "VoltageScalingModel",
    "WritePathOverhead",
    "WeightedEcdf",
    "YieldAnalyzer",
    "classical_yield",
    "mse_of_fault_map",
    "repair_yield",
    "spares_for_yield_target",
    "standard_benchmarks",
    "__version__",
]
