"""Optional Numba kernel backend.

Numba is *not* a dependency of this project; when it is absent (the normal
case in the offline container) importing this module still succeeds and the
backend constructor raises :class:`KernelUnavailableError`, which the
capability probe treats as "candidate unavailable" and moves on.  When Numba
is installed, the JIT-compiled loops mirror ``_kernels.c`` statement for
statement so the bit-identity contract holds through the same self-test.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.api import KernelBackend, KernelUnavailableError, SecdedKernelSpec
from repro.kernels.numpy_backend import NumpyKernelBackend

__all__ = ["NumbaKernelBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the offline default
    _numba = None


def _build_jitted():  # pragma: no cover - requires numba
    """Compile the jitted loops once; returns a dict of kernels."""
    njit = _numba.njit(cache=True, nogil=True)

    @njit
    def secded_encode(data, out, k, r, data_pos, parity_pos, check_masks):
        for i in range(data.size):
            d = data[i]
            inner = np.uint64(0)
            for b in range(k):
                inner |= ((d >> np.uint64(b)) & np.uint64(1)) << np.uint64(data_pos[b])
            for j in range(r):
                parity = np.uint64(0)
                masked = inner & check_masks[j]
                while masked:
                    parity ^= np.uint64(1)
                    masked &= masked - np.uint64(1)
                inner |= parity << np.uint64(parity_pos[j])
            overall = np.uint64(0)
            masked = inner
            while masked:
                overall ^= np.uint64(1)
                masked &= masked - np.uint64(1)
            out[i] = inner | overall

    @njit
    def secded_syndrome(codewords, syndromes, overall, r, check_masks):
        for i in range(codewords.size):
            c = codewords[i]
            syn = np.uint64(0)
            for j in range(r):
                parity = np.uint64(0)
                masked = c & check_masks[j]
                while masked:
                    parity ^= np.uint64(1)
                    masked &= masked - np.uint64(1)
                syn |= parity << np.uint64(j)
            syndromes[i] = syn
            par = np.uint64(0)
            masked = c
            while masked:
                par ^= np.uint64(1)
                masked &= masked - np.uint64(1)
            overall[i] = par

    @njit
    def secded_decode(codewords, out, k, limit, r, data_pos, check_masks):
        for i in range(codewords.size):
            c = codewords[i]
            syn = np.uint64(0)
            for j in range(r):
                parity = np.uint64(0)
                masked = c & check_masks[j]
                while masked:
                    parity ^= np.uint64(1)
                    masked &= masked - np.uint64(1)
                syn |= parity << np.uint64(j)
            par = np.uint64(0)
            masked = c
            while masked:
                par ^= np.uint64(1)
                masked &= masked - np.uint64(1)
            corrected = c ^ (np.uint64(1) << syn) if par else c
            if corrected > limit:
                return 1
            d = np.uint64(0)
            for b in range(k):
                d |= ((corrected >> np.uint64(data_pos[b])) & np.uint64(1)) << np.uint64(b)
            out[i] = d
        return 0

    @njit
    def fmlut_encode(data, rows, out, entries, rotations, width, mask):
        for i in range(data.size):
            row = rows[i]
            amount = np.uint64(rotations[row] % width)
            p = data[i]
            if amount:
                p = ((p >> amount) | (p << (np.uint64(width) - amount))) & mask
            out[i] = p | (np.uint64(entries[row]) << np.uint64(width))

    @njit
    def fmlut_decode(stored, rows, out, rotations, width, mask):
        for i in range(stored.size):
            p = stored[i] & mask
            amount = np.uint64(rotations[rows[i]] % width)
            if amount:
                p = ((p << amount) | (p >> (np.uint64(width) - amount))) & mask
            out[i] = p

    @njit
    def apply_masks(patterns, rows, out, and_masks, or_masks, xor_masks):
        for i in range(patterns.size):
            row = rows[i]
            out[i] = ((patterns[i] & and_masks[row]) | or_masks[row]) ^ xor_masks[row]

    @njit
    def invalid_map_mask(draws, width, max_fpw, bad):
        n_maps, fault_count = draws.shape
        for m in range(n_maps):
            row = np.sort(draws[m])
            invalid = False
            for j in range(1, fault_count):
                if row[j] == row[j - 1]:
                    invalid = True
                    break
            if not invalid and max_fpw > 0:
                run = 1
                for j in range(1, fault_count):
                    if row[j] // width == row[j - 1] // width:
                        run += 1
                        if run > max_fpw:
                            invalid = True
                            break
                    else:
                        run = 1
            bad[m] = invalid

    return {
        "secded_encode": secded_encode,
        "secded_syndrome": secded_syndrome,
        "secded_decode": secded_decode,
        "fmlut_encode": fmlut_encode,
        "fmlut_decode": fmlut_decode,
        "apply_masks": apply_masks,
        "invalid_map_mask": invalid_map_mask,
    }


class NumbaKernelBackend(KernelBackend):
    """JIT-compiled loops behind the same interface (requires numba)."""

    name = "numba"

    def __init__(self) -> None:
        if _numba is None:
            raise KernelUnavailableError("numba is not installed")
        try:  # pragma: no cover - requires numba
            self._jit = _build_jitted()
        except Exception as exc:  # pragma: no cover - jit failure
            raise KernelUnavailableError(f"numba jit compile failed: {exc}")
        # The 2's-complement codecs are already single vector expressions in
        # NumPy; a jitted loop buys nothing, so reuse the reference.
        self._reference = NumpyKernelBackend()

    # Everything below runs only where numba is installed.
    # pragma: no cover start
    def secded_encode(self, data: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        data = np.ascontiguousarray(data, dtype=np.uint64)
        out = np.empty_like(data)
        self._jit["secded_encode"](
            data, out, spec.data_bits, spec.parity_bits,
            spec.data_positions, spec.parity_positions, spec.check_masks,
        )
        return out

    def secded_syndrome(
        self, codewords: np.ndarray, spec: SecdedKernelSpec
    ) -> Tuple[np.ndarray, np.ndarray]:
        codewords = np.ascontiguousarray(codewords, dtype=np.uint64)
        syndromes = np.empty_like(codewords)
        overall = np.empty_like(codewords)
        self._jit["secded_syndrome"](
            codewords, syndromes, overall, spec.parity_bits, spec.check_masks
        )
        return syndromes, overall

    def secded_decode(self, codewords: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        from repro.memory.words import bit_mask

        codewords = np.ascontiguousarray(codewords, dtype=np.uint64)
        out = np.empty_like(codewords)
        status = self._jit["secded_decode"](
            codewords, out, spec.data_bits,
            np.uint64(bit_mask(spec.codeword_bits)),
            spec.parity_bits, spec.data_positions, spec.check_masks,
        )
        if status != 0:
            raise ValueError(f"codeword does not fit in {spec.codeword_bits} bits")
        return out

    def fmlut_encode(self, data, rows, entries, rotations, width):
        from repro.kernels.c_backend import CKernelBackend
        from repro.memory.words import bit_mask

        CKernelBackend._check_rotation_width(width)
        data = np.ascontiguousarray(data, dtype=np.uint64)
        CKernelBackend._check_patterns(data, width)
        out = np.empty_like(data)
        self._jit["fmlut_encode"](
            data,
            np.ascontiguousarray(rows, dtype=np.int64),
            out,
            np.ascontiguousarray(entries, dtype=np.int64),
            np.ascontiguousarray(rotations, dtype=np.int64),
            width,
            np.uint64(bit_mask(width)),
        )
        return out

    def fmlut_decode(self, stored, rows, rotations, width):
        from repro.kernels.c_backend import CKernelBackend
        from repro.memory.words import bit_mask

        CKernelBackend._check_rotation_width(width)
        stored = np.ascontiguousarray(stored, dtype=np.uint64)
        out = np.empty_like(stored)
        self._jit["fmlut_decode"](
            stored,
            np.ascontiguousarray(rows, dtype=np.int64),
            out,
            np.ascontiguousarray(rotations, dtype=np.int64),
            width,
            np.uint64(bit_mask(width)),
        )
        return out

    def apply_corruption_masks(self, patterns, rows, and_masks, or_masks, xor_masks):
        patterns = np.ascontiguousarray(patterns, dtype=np.uint64)
        out = np.empty_like(patterns)
        self._jit["apply_masks"](
            patterns,
            np.ascontiguousarray(rows, dtype=np.int64),
            out,
            np.ascontiguousarray(and_masks, dtype=np.uint64),
            np.ascontiguousarray(or_masks, dtype=np.uint64),
            np.ascontiguousarray(xor_masks, dtype=np.uint64),
        )
        return out

    def to_twos_complement(self, values: np.ndarray, width: int) -> np.ndarray:
        return self._reference.to_twos_complement(values, width)

    def from_twos_complement(self, patterns: np.ndarray, width: int) -> np.ndarray:
        return self._reference.from_twos_complement(patterns, width)

    def invalid_map_mask(
        self,
        draws: np.ndarray,
        width: int,
        max_faults_per_word: Optional[int],
    ) -> np.ndarray:
        draws = np.ascontiguousarray(draws, dtype=np.int64)
        bad = np.empty(draws.shape[0], dtype=np.bool_)
        self._jit["invalid_map_mask"](draws, width, max_faults_per_word or 0, bad)
        return bad
    # pragma: no cover end
