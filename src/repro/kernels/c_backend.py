"""Compiled C kernel backend (ctypes over a runtime-built shared library).

The extension is built the same way the project installs itself: offline,
with nothing but the standard library (see ``_local_build_backend.py`` at the
repo root for the same philosophy applied to wheels).  The first use invokes
the system C compiler on ``_kernels.c`` and caches the shared object under a
content-addressed name — keyed by the source bytes, the compiler, and the
flags — so later processes (pytest workers, sweep-engine shards) load the
cached binary without recompiling.  ``os.replace`` installs the finished
object atomically, so concurrent first builds cannot observe a torn file.

Environment knobs:

``REPRO_KERNEL_CC``
    Compiler executable to use (default: first of ``cc``, ``gcc``, ``clang``
    found on PATH).  Pointing this at a broken compiler is how the test suite
    forces the capability probe down its fallback path.
``REPRO_KERNEL_CACHE``
    Directory for built objects (default ``~/.cache/repro-kernels``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.kernels.api import KernelBackend, KernelUnavailableError, SecdedKernelSpec
from repro.memory.words import bit_mask

__all__ = ["CKernelBackend", "compile_kernels"]

_SOURCE_PATH = Path(__file__).with_name("_kernels.c")
_CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c11")
# The library is compiled on - and cached per - this machine, so tuning for
# the local CPU is safe and matters: -march=native turns the popcount
# fallback sequence into the single POPCNT instruction on x86-64.  Compilers
# without the flag (some cc shims) get the portable build.
_ARCH_FLAGS = ("-march=native",)

_U64P = ctypes.POINTER(ctypes.c_uint64)
_I64P = ctypes.POINTER(ctypes.c_int64)
_U8P = ctypes.POINTER(ctypes.c_uint8)


def _find_compiler() -> str:
    """The compiler executable, honouring ``REPRO_KERNEL_CC``."""
    override = os.environ.get("REPRO_KERNEL_CC")
    if override:
        return override
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    raise KernelUnavailableError("no C compiler found on PATH (cc/gcc/clang)")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def compile_kernels() -> Path:
    """Compile (or reuse a cached build of) the kernel shared library.

    Raises :class:`KernelUnavailableError` when no compiler is available or
    the compile fails; the error carries the compiler diagnostics so a forced
    failure is debuggable from the probe warning.
    """
    compiler = _find_compiler()
    source = _SOURCE_PATH.read_bytes()
    last_error: Optional[KernelUnavailableError] = None
    for flags in ((*_CFLAGS, *_ARCH_FLAGS), _CFLAGS):
        digest = hashlib.sha256(
            b"\x00".join([source, compiler.encode(), " ".join(flags).encode()])
        ).hexdigest()[:16]
        cache = _cache_dir()
        target = cache / f"repro_kernels_{digest}.so"
        if target.exists():
            return target
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise KernelUnavailableError(
                f"cannot create kernel cache dir {cache}: {exc}"
            )
        # Build into a private temp name, then atomically install: concurrent
        # first builds race harmlessly (last rename wins, both files identical).
        fd, temp_name = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        try:
            result = subprocess.run(
                [compiler, *flags, "-o", temp_name, str(_SOURCE_PATH)],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if result.returncode != 0:
                last_error = KernelUnavailableError(
                    f"C kernel compile failed ({compiler}): "
                    f"{result.stderr.strip() or result.stdout.strip()}"
                )
                continue
            os.replace(temp_name, target)
            return target
        except (OSError, subprocess.SubprocessError) as exc:
            last_error = KernelUnavailableError(
                f"C kernel compile failed ({compiler}): {exc}"
            )
        finally:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
    assert last_error is not None
    raise last_error


def _as_u64(array: np.ndarray):
    return np.ascontiguousarray(array, dtype=np.uint64)


def _as_i64(array: np.ndarray):
    return np.ascontiguousarray(array, dtype=np.int64)


def _ptr_u64(array: np.ndarray):
    return array.ctypes.data_as(_U64P)


def _ptr_i64(array: np.ndarray):
    return array.ctypes.data_as(_I64P)


class CKernelBackend(KernelBackend):
    """ctypes bindings over the compiled kernel library."""

    name = "c"

    def __init__(self) -> None:
        library_path = compile_kernels()
        try:
            lib = ctypes.CDLL(str(library_path))
        except OSError as exc:
            raise KernelUnavailableError(f"cannot load {library_path}: {exc}")
        for symbol in (
            "rk_secded_encode",
            "rk_secded_syndrome",
            "rk_secded_decode",
            "rk_fmlut_encode",
            "rk_fmlut_decode",
            "rk_apply_masks",
            "rk_to_twos",
            "rk_from_twos",
            "rk_invalid_map_mask",
        ):
            if not hasattr(lib, symbol):
                raise KernelUnavailableError(f"{library_path} lacks symbol {symbol}")
            getattr(lib, symbol).restype = ctypes.c_int
        self._lib = lib
        self.library_path = library_path

    # ------------------------------------------------------------------ #
    # XOR-popcount SECDED
    # ------------------------------------------------------------------ #
    def secded_encode(self, data: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        data = _as_u64(data)
        out = np.empty_like(data)
        self._lib.rk_secded_encode(
            _ptr_u64(data),
            _ptr_u64(out),
            ctypes.c_int64(data.size),
            ctypes.c_int64(spec.data_bits),
            ctypes.c_int64(spec.parity_bits),
            _ptr_i64(spec.data_positions),
            _ptr_i64(spec.parity_positions),
            _ptr_u64(spec.check_masks),
        )
        return out

    def secded_syndrome(
        self, codewords: np.ndarray, spec: SecdedKernelSpec
    ) -> Tuple[np.ndarray, np.ndarray]:
        codewords = _as_u64(codewords)
        syndromes = np.empty_like(codewords)
        overall = np.empty_like(codewords)
        self._lib.rk_secded_syndrome(
            _ptr_u64(codewords),
            _ptr_u64(syndromes),
            _ptr_u64(overall),
            ctypes.c_int64(codewords.size),
            ctypes.c_int64(spec.parity_bits),
            _ptr_u64(spec.check_masks),
        )
        return syndromes, overall

    def secded_decode(self, codewords: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        codewords = _as_u64(codewords)
        out = np.empty_like(codewords)
        status = self._lib.rk_secded_decode(
            _ptr_u64(codewords),
            _ptr_u64(out),
            ctypes.c_int64(codewords.size),
            ctypes.c_int64(spec.data_bits),
            ctypes.c_int64(spec.parity_bits),
            ctypes.c_int64(spec.codeword_bits),
            _ptr_i64(spec.data_positions),
            _ptr_u64(spec.check_masks),
        )
        if status != 0:
            raise ValueError(f"codeword does not fit in {spec.codeword_bits} bits")
        return out

    # ------------------------------------------------------------------ #
    # FM-LUT rotation apply
    # ------------------------------------------------------------------ #
    def fmlut_encode(
        self,
        data: np.ndarray,
        rows: np.ndarray,
        entries: np.ndarray,
        rotations: np.ndarray,
        width: int,
    ) -> np.ndarray:
        self._check_rotation_width(width)
        data = _as_u64(data)
        rows = _as_i64(rows)
        entries = _as_i64(entries)
        rotations = _as_i64(rotations)
        self._check_patterns(data, width)
        out = np.empty_like(data)
        self._lib.rk_fmlut_encode(
            _ptr_u64(data),
            _ptr_i64(rows),
            _ptr_u64(out),
            ctypes.c_int64(data.size),
            _ptr_i64(entries),
            _ptr_i64(rotations),
            ctypes.c_int64(width),
        )
        return out

    def fmlut_decode(
        self,
        stored: np.ndarray,
        rows: np.ndarray,
        rotations: np.ndarray,
        width: int,
    ) -> np.ndarray:
        self._check_rotation_width(width)
        stored = _as_u64(stored)
        rows = _as_i64(rows)
        rotations = _as_i64(rotations)
        out = np.empty_like(stored)
        self._lib.rk_fmlut_decode(
            _ptr_u64(stored),
            _ptr_i64(rows),
            _ptr_u64(out),
            ctypes.c_int64(stored.size),
            _ptr_i64(rotations),
            ctypes.c_int64(width),
        )
        return out

    @staticmethod
    def _check_rotation_width(width: int) -> None:
        # Mirrors repro.memory.words.rotate_*_array, which the NumPy
        # reference path raises through.
        if width <= 0:
            raise ValueError(f"word width must be positive, got {width}")
        if width > 63:
            raise ValueError("vectorised rotation supports widths up to 63 bits")

    @staticmethod
    def _check_patterns(patterns: np.ndarray, width: int) -> None:
        if patterns.size and np.any(patterns > np.uint64(bit_mask(width))):
            raise ValueError(f"pattern exceeds {width}-bit range")

    # ------------------------------------------------------------------ #
    # Stuck-at corruption masks
    # ------------------------------------------------------------------ #
    def apply_corruption_masks(
        self,
        patterns: np.ndarray,
        rows: np.ndarray,
        and_masks: np.ndarray,
        or_masks: np.ndarray,
        xor_masks: np.ndarray,
    ) -> np.ndarray:
        patterns = _as_u64(patterns)
        rows = _as_i64(rows)
        out = np.empty_like(patterns)
        self._lib.rk_apply_masks(
            _ptr_u64(patterns),
            _ptr_i64(rows),
            _ptr_u64(out),
            ctypes.c_int64(patterns.size),
            _ptr_u64(_as_u64(and_masks)),
            _ptr_u64(_as_u64(or_masks)),
            _ptr_u64(_as_u64(xor_masks)),
        )
        return out

    # ------------------------------------------------------------------ #
    # 2's-complement array codecs
    # ------------------------------------------------------------------ #
    def to_twos_complement(self, values: np.ndarray, width: int) -> np.ndarray:
        values = _as_i64(values)
        out = np.empty(values.shape, dtype=np.uint64)
        status = self._lib.rk_to_twos(
            _ptr_i64(values),
            _ptr_u64(out),
            ctypes.c_int64(values.size),
            ctypes.c_int64(width),
        )
        if status != 0:
            raise ValueError(f"values out of range for {width}-bit 2's complement")
        return out

    def from_twos_complement(self, patterns: np.ndarray, width: int) -> np.ndarray:
        patterns = _as_u64(patterns)
        out = np.empty(patterns.shape, dtype=np.int64)
        status = self._lib.rk_from_twos(
            _ptr_u64(patterns),
            _ptr_i64(out),
            ctypes.c_int64(patterns.size),
            ctypes.c_int64(width),
        )
        if status != 0:
            raise ValueError(f"pattern exceeds {width}-bit range")
        return out

    # ------------------------------------------------------------------ #
    # Rejection-sampler validity check
    # ------------------------------------------------------------------ #
    def invalid_map_mask(
        self,
        draws: np.ndarray,
        width: int,
        max_faults_per_word: Optional[int],
    ) -> np.ndarray:
        draws = np.ascontiguousarray(draws, dtype=np.int64)
        n_maps, fault_count = draws.shape
        bad = np.empty(n_maps, dtype=np.uint8)
        scratch = np.empty(fault_count, dtype=np.int64)
        self._lib.rk_invalid_map_mask(
            _ptr_i64(draws),
            ctypes.c_int64(n_maps),
            ctypes.c_int64(fault_count),
            ctypes.c_int64(width),
            ctypes.c_int64(max_faults_per_word or 0),
            bad.ctypes.data_as(_U8P),
            _ptr_i64(scratch),
        )
        return bad.astype(bool)
