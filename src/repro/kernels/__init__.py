"""Kernel-backend registry and capability probe.

The hot Monte-Carlo datapath (SECDED syndrome machinery, FM-LUT rotation
apply, corruption masks, 2's-complement codecs, the rejection sampler's
validity check) runs through whichever :class:`~repro.kernels.api.KernelBackend`
this module selects at first use:

* ``REPRO_KERNEL_BACKEND={numpy,c,numba}`` forces a backend.  If the forced
  backend cannot be built (no compiler, numba missing, failed self-test) a
  single :class:`RuntimeWarning` is emitted and the ``numpy`` reference is
  used instead — the run still completes, just slower.
* Unset, the probe tries ``c`` then ``numba`` and falls back to ``numpy``
  **silently**: machines without a toolchain behave exactly as before this
  registry existed.

Every candidate is self-tested against the NumPy reference on deterministic
inputs before it can be selected, so a miscompiled kernel can never leak
non-identical results into a run.  Backend choice changes throughput only —
never results (the rng draws themselves always stay in NumPy).
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.kernels.api import KernelBackend, KernelUnavailableError, SecdedKernelSpec
from repro.kernels.numpy_backend import NumpyKernelBackend

__all__ = [
    "KernelBackend",
    "KernelUnavailableError",
    "SecdedKernelSpec",
    "active_backend",
    "available_backends",
    "reset_active_backend",
    "set_backend",
    "use_backend",
]

ENV_BACKEND = "REPRO_KERNEL_BACKEND"

_REFERENCE = NumpyKernelBackend()
_active: Optional[KernelBackend] = None


def _make_c_backend() -> KernelBackend:
    from repro.kernels.c_backend import CKernelBackend

    return CKernelBackend()


def _make_numba_backend() -> KernelBackend:
    from repro.kernels.numba_backend import NumbaKernelBackend

    return NumbaKernelBackend()


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": lambda: _REFERENCE,
    "c": _make_c_backend,
    "numba": _make_numba_backend,
}

#: Auto-probe preference: fastest first, reference last (always succeeds).
_AUTO_ORDER = ("c", "numba", "numpy")


def _self_test(candidate: KernelBackend) -> None:
    """Compare the candidate against the NumPy reference on fixed inputs.

    Raises :class:`KernelUnavailableError` on the first mismatch; the probe
    then discards the candidate.  Cases cover every kernel, including the
    boundary patterns (all-zeros, all-ones) and a duplicate-cell redraw.
    """
    if candidate is _REFERENCE:
        return
    rng = np.random.default_rng(20150607)  # DAC'15 publication date

    # SECDED over an 8-bit data word (the paper's configuration).
    positions = [p for p in range(1, 14) if (p & (p - 1)) != 0]
    parity_pos = [1 << j for j in range(4)]
    masks = [
        np.uint64(sum(1 << p for p in range(1, 14) if (p >> j) & 1))
        for j in range(4)
    ]
    spec = SecdedKernelSpec(
        data_bits=8,
        parity_bits=4,
        codeword_bits=14,
        data_positions=np.array(positions, dtype=np.int64),
        parity_positions=np.array(parity_pos, dtype=np.int64),
        check_masks=np.array(masks, dtype=np.uint64),
    )
    data = np.concatenate(
        [np.array([0, 255, 1, 128], dtype=np.uint64),
         rng.integers(0, 256, size=64).astype(np.uint64)]
    )
    want_cw = _REFERENCE.secded_encode(data, spec)
    got_cw = candidate.secded_encode(data, spec)
    if not np.array_equal(want_cw, got_cw):
        raise KernelUnavailableError(f"{candidate.name}: secded_encode self-test failed")
    flips = np.uint64(1) << rng.integers(0, 14, size=data.size).astype(np.uint64)
    corrupted = want_cw ^ flips
    for method in ("secded_syndrome", "secded_decode"):
        want = getattr(_REFERENCE, method)(corrupted, spec)
        got = getattr(candidate, method)(corrupted, spec)
        want = want if isinstance(want, tuple) else (want,)
        got = got if isinstance(got, tuple) else (got,)
        if not all(np.array_equal(w, g) for w, g in zip(want, got)):
            raise KernelUnavailableError(f"{candidate.name}: {method} self-test failed")

    # FM-LUT apply over a 7-row, width-8, 2-segment LUT.
    width = 8
    entries = rng.integers(0, 4, size=7).astype(np.int64)
    rotations = ((2 - entries) * 4) % width
    rows = rng.integers(0, 7, size=40).astype(np.int64)
    words = rng.integers(0, 1 << width, size=40).astype(np.uint64)
    words[:2] = (0, (1 << width) - 1)
    stored = _REFERENCE.fmlut_encode(words, rows, entries, rotations, width)
    if not np.array_equal(stored, candidate.fmlut_encode(words, rows, entries, rotations, width)):
        raise KernelUnavailableError(f"{candidate.name}: fmlut_encode self-test failed")
    if not np.array_equal(
        _REFERENCE.fmlut_decode(stored, rows, rotations, width),
        candidate.fmlut_decode(stored, rows, rotations, width),
    ):
        raise KernelUnavailableError(f"{candidate.name}: fmlut_decode self-test failed")

    # Corruption masks.
    and_m = rng.integers(0, 1 << 14, size=7).astype(np.uint64)
    or_m = rng.integers(0, 1 << 14, size=7).astype(np.uint64)
    xor_m = rng.integers(0, 1 << 14, size=7).astype(np.uint64)
    pats = rng.integers(0, 1 << 14, size=40).astype(np.uint64)
    if not np.array_equal(
        _REFERENCE.apply_corruption_masks(pats, rows, and_m, or_m, xor_m),
        candidate.apply_corruption_masks(pats, rows, and_m, or_m, xor_m),
    ):
        raise KernelUnavailableError(
            f"{candidate.name}: apply_corruption_masks self-test failed"
        )

    # 2's-complement codecs at both range boundaries.
    values = np.array([-128, 127, 0, -1, 5], dtype=np.int64)
    want_p = _REFERENCE.to_twos_complement(values, 8)
    if not np.array_equal(want_p, candidate.to_twos_complement(values, 8)):
        raise KernelUnavailableError(f"{candidate.name}: to_twos_complement self-test failed")
    if not np.array_equal(
        _REFERENCE.from_twos_complement(want_p, 8),
        candidate.from_twos_complement(want_p, 8),
    ):
        raise KernelUnavailableError(
            f"{candidate.name}: from_twos_complement self-test failed"
        )

    # Rejection-sampler validity check, with and without a per-word cap;
    # row 0 repeats a cell, row 1 packs three faults into one word.
    draws = rng.integers(0, 64, size=(16, 4)).astype(np.int64)
    draws[0] = (3, 3, 10, 20)
    draws[1] = (8, 9, 10, 40)
    for max_fpw in (None, 1, 2):
        if not np.array_equal(
            _REFERENCE.invalid_map_mask(draws, 8, max_fpw),
            candidate.invalid_map_mask(draws, 8, max_fpw),
        ):
            raise KernelUnavailableError(
                f"{candidate.name}: invalid_map_mask self-test failed "
                f"(max_faults_per_word={max_fpw})"
            )


def _build(name: str) -> KernelBackend:
    """Instantiate and self-test one named backend."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KernelUnavailableError(
            f"unknown kernel backend {name!r}; known: {', '.join(sorted(_FACTORIES))}"
        )
    backend = factory()
    _self_test(backend)
    return backend


def _probe() -> KernelBackend:
    forced = os.environ.get(ENV_BACKEND)
    if forced:
        try:
            return _build(forced.strip().lower())
        except KernelUnavailableError as exc:
            warnings.warn(
                f"{ENV_BACKEND}={forced!r} unavailable ({exc}); "
                "falling back to the numpy reference backend",
                RuntimeWarning,
                stacklevel=3,
            )
            return _REFERENCE
    for name in _AUTO_ORDER:
        try:
            return _build(name)
        except KernelUnavailableError:
            continue
    return _REFERENCE


def active_backend() -> KernelBackend:
    """The process-wide backend, probing (once) on first use."""
    global _active
    if _active is None:
        _active = _probe()
    return _active


def set_backend(backend) -> KernelBackend:
    """Force the process-wide backend; accepts a name or an instance."""
    global _active
    if isinstance(backend, str):
        backend = _build(backend.strip().lower())
    elif not isinstance(backend, KernelBackend):
        raise TypeError(f"expected backend name or KernelBackend, got {type(backend)!r}")
    _active = backend
    return backend


def reset_active_backend() -> None:
    """Drop the cached selection so the next use re-probes (test hook)."""
    global _active
    _active = None


@contextlib.contextmanager
def use_backend(backend) -> Iterator[KernelBackend]:
    """Temporarily switch the process-wide backend (test/bench hook)."""
    global _active
    previous = _active
    try:
        yield set_backend(backend)
    finally:
        _active = previous


def available_backends() -> List[str]:
    """Names of backends that build and pass the self-test on this machine."""
    names = []
    for name in _FACTORIES:
        try:
            _build(name)
        except KernelUnavailableError:
            continue
        names.append(name)
    return names
