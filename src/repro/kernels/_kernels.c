/* Compiled kernels of the hot Monte-Carlo datapath.
 *
 * Built at runtime by repro/kernels/c_backend.py with the system C compiler
 * (no network, no setuptools) and loaded through ctypes.  Every function is
 * a straight transcription of the NumPy reference in numpy_backend.py and
 * must stay bit-for-bit identical to it; the capability probe self-tests
 * each kernel against the reference before the backend is ever selected.
 *
 * Conventions:
 *   - all arrays are 1-D contiguous, lengths passed as int64_t;
 *   - structural validation (dtype, bounds, widths) happens in the Python
 *     wrappers, exactly where it always happened;
 *   - non-zero return codes signal the data-dependent error cases that the
 *     NumPy path reports via ValueError (out-of-range codes, 3+-error
 *     SECDED codewords); the wrapper re-raises the matching exception.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64(x) __builtin_popcountll(x)
#else
static int popcount64_sw(uint64_t x)
{
    int count = 0;
    while (x) {
        x &= x - 1;
        ++count;
    }
    return count;
}
#define POPCOUNT64(x) popcount64_sw(x)
#endif

static uint64_t width_mask(int64_t width)
{
    return (width >= 64) ? ~(uint64_t)0 : (((uint64_t)1 << width) - 1);
}

/* ------------------------------------------------------------------ */
/* XOR-popcount SECDED                                                 */
/* ------------------------------------------------------------------ */

/* Data bits occupy contiguous position runs between the power-of-two
 * parity positions (at most r + 1 runs), so the per-bit gather/scatter
 * loops collapse into a handful of shift/mask operations per word.  The
 * run table is rebuilt per call from data_pos -- O(k), off the hot loop. */
typedef struct {
    int64_t pos;   /* first codeword position of the run */
    int64_t bit;   /* first data-bit index of the run */
    uint64_t mask; /* (1 << run_length) - 1 */
} rk_run;

static int64_t rk_build_runs(const int64_t *data_pos, int64_t k, rk_run *runs)
{
    int64_t n_runs = 0;
    int64_t b = 0;
    while (b < k) {
        int64_t start = b;
        while (b + 1 < k && data_pos[b + 1] == data_pos[b] + 1)
            ++b;
        ++b;
        runs[n_runs].pos = data_pos[start];
        runs[n_runs].bit = start;
        runs[n_runs].mask = width_mask(b - start);
        ++n_runs;
    }
    return n_runs;
}

int rk_secded_encode(const uint64_t *data, uint64_t *out, int64_t n,
                     int64_t k, int64_t r,
                     const int64_t *data_pos, const int64_t *parity_pos,
                     const uint64_t *check_masks)
{
    rk_run runs[64];
    int64_t n_runs = rk_build_runs(data_pos, k, runs);
    for (int64_t i = 0; i < n; ++i) {
        uint64_t d = data[i];
        uint64_t inner = 0;
        for (int64_t s = 0; s < n_runs; ++s)
            inner |= ((d >> runs[s].bit) & runs[s].mask) << runs[s].pos;
        for (int64_t j = 0; j < r; ++j)
            inner |= (uint64_t)(POPCOUNT64(inner & check_masks[j]) & 1)
                     << parity_pos[j];
        out[i] = inner | (uint64_t)(POPCOUNT64(inner) & 1);
    }
    return 0;
}

int rk_secded_syndrome(const uint64_t *codewords, uint64_t *syndromes,
                       uint64_t *overall, int64_t n, int64_t r,
                       const uint64_t *check_masks)
{
    for (int64_t i = 0; i < n; ++i) {
        uint64_t c = codewords[i];
        uint64_t syn = 0;
        for (int64_t j = 0; j < r; ++j)
            syn |= (uint64_t)(POPCOUNT64(c & check_masks[j]) & 1) << j;
        syndromes[i] = syn;
        overall[i] = (uint64_t)(POPCOUNT64(c) & 1);
    }
    return 0;
}

/* Returns 1 when a corrected codeword leaves the n_bits range (only possible
 * with three or more errors); the wrapper raises the scalar decoder's
 * ValueError.  n_bits <= 64 is guaranteed by SecdedKernelSpec, so the
 * syndrome (< 2**r, r <= 6) is always a valid shift amount. */
int rk_secded_decode(const uint64_t *codewords, uint64_t *out, int64_t n,
                     int64_t k, int64_t r, int64_t n_bits,
                     const int64_t *data_pos, const uint64_t *check_masks)
{
    uint64_t limit = width_mask(n_bits);
    rk_run runs[64];
    int64_t n_runs = rk_build_runs(data_pos, k, runs);
    for (int64_t i = 0; i < n; ++i) {
        uint64_t c = codewords[i];
        uint64_t syn = 0;
        for (int64_t j = 0; j < r; ++j)
            syn |= (uint64_t)(POPCOUNT64(c & check_masks[j]) & 1) << j;
        uint64_t corrected =
            (POPCOUNT64(c) & 1) ? (c ^ ((uint64_t)1 << syn)) : c;
        if (corrected > limit)
            return 1;
        uint64_t d = 0;
        for (int64_t s = 0; s < n_runs; ++s)
            d |= ((corrected >> runs[s].pos) & runs[s].mask) << runs[s].bit;
        out[i] = d;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* FM-LUT rotation apply (width <= 63, enforced by the wrapper)        */
/* ------------------------------------------------------------------ */

int rk_fmlut_encode(const uint64_t *data, const int64_t *rows, uint64_t *out,
                    int64_t n, const int64_t *entries, const int64_t *rotations,
                    int64_t width)
{
    uint64_t mask = width_mask(width);
    for (int64_t i = 0; i < n; ++i) {
        int64_t row = rows[i];
        uint64_t amount = (uint64_t)rotations[row] % (uint64_t)width;
        uint64_t p = data[i];
        uint64_t rotated =
            amount ? (((p >> amount) | (p << (width - amount))) & mask) : p;
        out[i] = rotated | ((uint64_t)entries[row] << width);
    }
    return 0;
}

int rk_fmlut_decode(const uint64_t *stored, const int64_t *rows, uint64_t *out,
                    int64_t n, const int64_t *rotations, int64_t width)
{
    uint64_t mask = width_mask(width);
    for (int64_t i = 0; i < n; ++i) {
        uint64_t p = stored[i] & mask;
        uint64_t amount = (uint64_t)rotations[rows[i]] % (uint64_t)width;
        out[i] = amount ? (((p << amount) | (p >> (width - amount))) & mask) : p;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Stuck-at corruption masks                                           */
/* ------------------------------------------------------------------ */

int rk_apply_masks(const uint64_t *patterns, const int64_t *rows, uint64_t *out,
                   int64_t n, const uint64_t *and_masks, const uint64_t *or_masks,
                   const uint64_t *xor_masks)
{
    for (int64_t i = 0; i < n; ++i) {
        int64_t row = rows[i];
        out[i] = ((patterns[i] & and_masks[row]) | or_masks[row]) ^ xor_masks[row];
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* 2's-complement array codecs (width <= 63, enforced by the wrapper)  */
/* ------------------------------------------------------------------ */

int rk_to_twos(const int64_t *values, uint64_t *out, int64_t n, int64_t width)
{
    int64_t lo = -((int64_t)1 << (width - 1));
    int64_t hi = ((int64_t)1 << (width - 1)) - 1;
    uint64_t mask = width_mask(width);
    for (int64_t i = 0; i < n; ++i) {
        int64_t v = values[i];
        if (v < lo || v > hi)
            return 1;
        out[i] = (uint64_t)v & mask;
    }
    return 0;
}

int rk_from_twos(const uint64_t *patterns, int64_t *out, int64_t n, int64_t width)
{
    uint64_t mask = width_mask(width);
    uint64_t sign = (uint64_t)1 << (width - 1);
    for (int64_t i = 0; i < n; ++i) {
        uint64_t p = patterns[i];
        if (p > mask)
            return 1;
        /* (x ^ sign) - sign sign-extends; x ^ sign stays below 2**63. */
        out[i] = (int64_t)(p ^ sign) - (int64_t)sign;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Rejection-sampler validity check                                    */
/* ------------------------------------------------------------------ */

static int compare_int64(const void *a, const void *b)
{
    int64_t lhs = *(const int64_t *)a;
    int64_t rhs = *(const int64_t *)b;
    return (lhs > rhs) - (lhs < rhs);
}

/* draws is (n_maps x fault_count) row-major; scratch holds fault_count
 * entries; max_fpw == 0 means "no per-word limit".  bad[m] mirrors the
 * NumPy reference: a duplicate cell, or a run of more than max_fpw faults
 * in one word row, invalidates the map. */
int rk_invalid_map_mask(const int64_t *draws, int64_t n_maps, int64_t fault_count,
                        int64_t width, int64_t max_fpw, uint8_t *bad,
                        int64_t *scratch)
{
    for (int64_t m = 0; m < n_maps; ++m) {
        const int64_t *row = draws + m * fault_count;
        memcpy(scratch, row, (size_t)fault_count * sizeof(int64_t));
        qsort(scratch, (size_t)fault_count, sizeof(int64_t), compare_int64);
        int invalid = 0;
        for (int64_t j = 1; j < fault_count; ++j) {
            if (scratch[j] == scratch[j - 1]) {
                invalid = 1;
                break;
            }
        }
        if (!invalid && max_fpw > 0) {
            /* Sorted cells sharing a word form runs of equal cell/width. */
            int64_t run = 1;
            for (int64_t j = 1; j < fault_count; ++j) {
                if (scratch[j] / width == scratch[j - 1] / width) {
                    if (++run > max_fpw) {
                        invalid = 1;
                        break;
                    }
                } else {
                    run = 1;
                }
            }
        }
        bad[m] = (uint8_t)invalid;
    }
    return 0;
}
