"""Kernel-backend interface of the hot Monte-Carlo datapath.

Every die evaluation funnels through a handful of tight array loops: the
XOR-popcount SECDED syndrome machinery, the FM-LUT gather/rotate apply of the
bit-shuffling scheme, the stuck-at AND/OR/XOR corruption-mask application,
the 2's-complement array codecs, and the validity check of the batched
fault-placement rejection sampler.  :class:`KernelBackend` names exactly
those loops so they can be swapped between a NumPy reference implementation
and compiled implementations (C via ctypes, optionally Numba) without any
caller noticing anything but speed.

The contract every backend must honour:

* **Bit identity.**  For identical inputs, every method returns arrays that
  are bit-for-bit equal to the ``numpy`` reference backend — including the
  data-dependent :class:`ValueError` cases (out-of-range codes, 3+-error
  SECDED codewords).  Backend choice may change throughput, never results.
* **Validated inputs.**  Callers (the scheme/fault-map wrappers) perform the
  structural validation they always performed — dtypes, shapes, row bounds,
  width limits.  Kernels only re-check what is data-dependent and therefore
  only discoverable mid-loop.
* **No hidden state.**  Kernels are pure functions of their arguments; all
  per-die state (LUT tables, parity-check masks, corruption masks) is hoisted
  into construction-time arrays by the callers and passed in explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["KernelBackend", "KernelUnavailableError", "SecdedKernelSpec"]


class KernelUnavailableError(RuntimeError):
    """A backend cannot be used here (no compiler, missing import, failed self-test)."""


@dataclass(frozen=True)
class SecdedKernelSpec:
    """Construction-time description of one SECDED code for the kernels.

    Mirrors the layout of :class:`repro.ecc.hamming.SecdedCode`: bit 0 of the
    codeword is the overall parity, parity bits sit at power-of-two positions
    ``1, 2, 4, ...``, data bits fill the remaining positions in increasing
    order.  All arrays are precomputed once per code (the codes themselves are
    cached per data width), so no per-call setup survives in the hot loop.
    """

    data_bits: int
    parity_bits: int  # Hamming parity bits r (the overall bit is extra)
    codeword_bits: int
    data_positions: np.ndarray = field(repr=False)  # int64[data_bits]
    parity_positions: np.ndarray = field(repr=False)  # int64[parity_bits]
    check_masks: np.ndarray = field(repr=False)  # uint64[parity_bits]

    def __post_init__(self) -> None:
        if self.codeword_bits > 64:
            raise ValueError(
                "kernel-backed SECDED supports codewords up to 64 bits, got "
                f"{self.codeword_bits}"
            )
        object.__setattr__(
            self,
            "data_positions",
            np.ascontiguousarray(self.data_positions, dtype=np.int64),
        )
        object.__setattr__(
            self,
            "parity_positions",
            np.ascontiguousarray(self.parity_positions, dtype=np.int64),
        )
        object.__setattr__(
            self,
            "check_masks",
            np.ascontiguousarray(self.check_masks, dtype=np.uint64),
        )


class KernelBackend(ABC):
    """One implementation of the hot datapath loops (see module docstring)."""

    #: Registry name; also what ``REPRO_KERNEL_BACKEND`` selects.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # XOR-popcount SECDED (parity-check matrix over uint64 arrays)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def secded_encode(self, data: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        """Encode ``uint64`` data words (< 2**k, validated by caller) into codewords."""

    @abstractmethod
    def secded_syndrome(
        self, codewords: np.ndarray, spec: SecdedKernelSpec
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(hamming_syndromes, overall_parity_errors)`` for uint64 codewords."""

    @abstractmethod
    def secded_decode(self, codewords: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        """Single-error-corrected data words.

        Must raise ``ValueError(f"codeword does not fit in {n} bits")`` when a
        corrected codeword leaves the code's range (only possible with three
        or more errors), exactly like the scalar decoder.
        """

    # ------------------------------------------------------------------ #
    # FM-LUT rotation apply (bit-shuffling scheme)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def fmlut_encode(
        self,
        data: np.ndarray,
        rows: np.ndarray,
        entries: np.ndarray,
        rotations: np.ndarray,
        width: int,
    ) -> np.ndarray:
        """Write path: gather each row's rotation, right-rotate, append the entry.

        ``entries``/``rotations`` are the full per-row LUT tables (int64,
        indexed by ``rows``); ``width`` is the data word width (<= 63).
        """

    @abstractmethod
    def fmlut_decode(
        self,
        stored: np.ndarray,
        rows: np.ndarray,
        rotations: np.ndarray,
        width: int,
    ) -> np.ndarray:
        """Read path: strip the LUT columns and left-rotate each data part back."""

    # ------------------------------------------------------------------ #
    # Stuck-at corruption masks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def apply_corruption_masks(
        self,
        patterns: np.ndarray,
        rows: np.ndarray,
        and_masks: np.ndarray,
        or_masks: np.ndarray,
        xor_masks: np.ndarray,
    ) -> np.ndarray:
        """``((patterns & and[rows]) | or[rows]) ^ xor[rows]`` over uint64 arrays."""

    # ------------------------------------------------------------------ #
    # 2's-complement array codecs
    # ------------------------------------------------------------------ #
    @abstractmethod
    def to_twos_complement(self, values: np.ndarray, width: int) -> np.ndarray:
        """Signed int64 codes -> uint64 patterns; ValueError on out-of-range values."""

    @abstractmethod
    def from_twos_complement(self, patterns: np.ndarray, width: int) -> np.ndarray:
        """uint64 patterns -> signed int64 codes; ValueError on oversized patterns."""

    # ------------------------------------------------------------------ #
    # Batched fault-placement rejection sampler (inner redraw loop)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def invalid_map_mask(
        self,
        draws: np.ndarray,
        width: int,
        max_faults_per_word: Optional[int],
    ) -> np.ndarray:
        """Validity check of one redraw round: which candidate maps must be redrawn.

        ``draws`` is the ``(maps, fault_count)`` int64 matrix of flat cell
        indices drawn with replacement; a map is invalid when it repeats a
        cell or (with ``max_faults_per_word``) packs more faults into one
        ``width``-bit word than allowed.  Returns a bool array per map.  The
        random draws themselves stay in NumPy so the rng stream — and with it
        every seeded result — is identical across backends.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name!r}>"
