"""Reference kernel backend: the original vectorised NumPy datapath.

The implementations here are *extracted* from their historical homes
(``repro.ecc.hamming``, ``repro.core.scheme``, ``repro.memory.faults``,
``repro.memory.words``) rather than rewritten, so every seeded result, golden
figure, and equivalence-harness case is bit-for-bit what it was before the
kernel registry existed.  Compiled backends are validated against this one by
the capability probe's self-test and by ``tests/test_kernels.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.api import KernelBackend, SecdedKernelSpec
from repro.memory.words import bit_mask, parity_array, rotate_left_array, rotate_right_array

__all__ = ["NumpyKernelBackend"]


class NumpyKernelBackend(KernelBackend):
    """Pure-NumPy reference implementation of every kernel."""

    name = "numpy"

    # ------------------------------------------------------------------ #
    # XOR-popcount SECDED
    # ------------------------------------------------------------------ #
    def secded_encode(self, data: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        inner = np.zeros_like(data)
        one = np.uint64(1)
        for i, pos in enumerate(spec.data_positions.tolist()):
            inner |= ((data >> np.uint64(i)) & one) << np.uint64(pos)
        for j, ppos in enumerate(spec.parity_positions.tolist()):
            inner |= parity_array(inner & spec.check_masks[j]) << np.uint64(ppos)
        return inner | parity_array(inner)

    def secded_syndrome(
        self, codewords: np.ndarray, spec: SecdedKernelSpec
    ) -> Tuple[np.ndarray, np.ndarray]:
        syndromes = np.zeros_like(codewords)
        for j in range(spec.parity_positions.size):
            syndromes |= parity_array(codewords & spec.check_masks[j]) << np.uint64(j)
        return syndromes, parity_array(codewords)

    def secded_decode(self, codewords: np.ndarray, spec: SecdedKernelSpec) -> np.ndarray:
        syndromes, overall_errors = self.secded_syndrome(codewords, spec)
        corrected = np.where(
            overall_errors == np.uint64(1),
            codewords ^ (np.uint64(1) << syndromes),
            codewords,
        )
        # A syndrome pointing outside the codeword (3+ errors) must fail
        # exactly like the scalar decoder's _check_codeword.
        if corrected.size and np.any(corrected > np.uint64(bit_mask(spec.codeword_bits))):
            raise ValueError(f"codeword does not fit in {spec.codeword_bits} bits")
        data = np.zeros_like(corrected)
        one = np.uint64(1)
        for i, pos in enumerate(spec.data_positions.tolist()):
            data |= ((corrected >> np.uint64(pos)) & one) << np.uint64(i)
        return data

    # ------------------------------------------------------------------ #
    # FM-LUT rotation apply
    # ------------------------------------------------------------------ #
    def fmlut_encode(
        self,
        data: np.ndarray,
        rows: np.ndarray,
        entries: np.ndarray,
        rotations: np.ndarray,
        width: int,
    ) -> np.ndarray:
        shuffled = rotate_right_array(data, rotations[rows], width)
        return shuffled | (entries[rows].astype(np.uint64) << np.uint64(width))

    def fmlut_decode(
        self,
        stored: np.ndarray,
        rows: np.ndarray,
        rotations: np.ndarray,
        width: int,
    ) -> np.ndarray:
        data_part = stored & np.uint64(bit_mask(width))
        return rotate_left_array(data_part, rotations[rows], width)

    # ------------------------------------------------------------------ #
    # Stuck-at corruption masks
    # ------------------------------------------------------------------ #
    def apply_corruption_masks(
        self,
        patterns: np.ndarray,
        rows: np.ndarray,
        and_masks: np.ndarray,
        or_masks: np.ndarray,
        xor_masks: np.ndarray,
    ) -> np.ndarray:
        return ((patterns & and_masks[rows]) | or_masks[rows]) ^ xor_masks[rows]

    # ------------------------------------------------------------------ #
    # 2's-complement array codecs
    # ------------------------------------------------------------------ #
    def to_twos_complement(self, values: np.ndarray, width: int) -> np.ndarray:
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        if np.any(values < lo) or np.any(values > hi):
            raise ValueError(f"values out of range for {width}-bit 2's complement")
        return values.astype(np.uint64) & np.uint64(bit_mask(width))

    def from_twos_complement(self, patterns: np.ndarray, width: int) -> np.ndarray:
        if np.any(patterns > np.uint64(bit_mask(width))):
            raise ValueError(f"pattern exceeds {width}-bit range")
        sign = np.uint64(1 << (width - 1))
        # (x ^ m) - m sign-extends an m-bit pattern; x ^ sign stays below 2**63.
        return (patterns ^ sign).astype(np.int64) - np.int64(sign)

    # ------------------------------------------------------------------ #
    # Rejection-sampler validity check
    # ------------------------------------------------------------------ #
    def invalid_map_mask(
        self,
        draws: np.ndarray,
        width: int,
        max_faults_per_word: Optional[int],
    ) -> np.ndarray:
        n_maps, fault_count = draws.shape
        draws_sorted = np.sort(draws, axis=1)
        bad = np.zeros(n_maps, dtype=bool)
        # Repeated cell within a map -> invalid (uniformity requires
        # exactly fault_count distinct cells).
        bad |= np.any(draws_sorted[:, 1:] == draws_sorted[:, :-1], axis=1)
        if max_faults_per_word is not None:
            rows_sorted = np.sort(draws // width, axis=1)
            # After sorting, faults sharing a word form runs of equal row
            # indices; the longest run is the per-word maximum.
            equal_neighbours = rows_sorted[:, 1:] == rows_sorted[:, :-1]
            if max_faults_per_word == 1:
                bad |= np.any(equal_neighbours, axis=1)
            else:
                run_len = np.ones((n_maps, fault_count), dtype=np.int64)
                for j in range(1, fault_count):
                    run_len[:, j] = np.where(
                        equal_neighbours[:, j - 1], run_len[:, j - 1] + 1, 1
                    )
                bad |= run_len.max(axis=1) > max_faults_per_word
        return bad
