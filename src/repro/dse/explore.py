"""Cross-layer design-space exploration: sweep, join, and Pareto-extract.

This is the paper's closing argument made executable.  A declarative
:class:`~repro.dse.spec.ExperimentSpec` names a grid of operating points
(supply voltages mapped to ``Pcell`` through the fault model), protection
schemes, and benchmarks; the :class:`DesignSpaceExplorer` evaluates every
grid point through the :class:`~repro.sim.engine.SweepEngine` (inheriting
its sharded parallelism, deterministic per-die seeding, and checkpoint
cache), joins the quality distributions with the voltage-scaling energy
model and the hardware overhead model, and produces one tidy result table.
:func:`pareto_frontier` then answers the question none of the single-figure
views can: *which (VDD, scheme, nFM) points are Pareto-optimal in energy
versus quality-at-yield?*
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import ProtectionScheme
from repro.dse.evaluate import evaluate_overhead_point
from repro.dse.registry import build_benchmark, build_scheme
from repro.dse.spec import ExperimentSpec
from repro.hardware.overhead import ReadPathOverhead
from repro.sim.engine import (
    AdaptiveBudgetReport,
    QualityDistribution,
    SweepEngine,
    SweepRunStats,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.store.invalidate import GridPointStatus
    from repro.store.store import ResultStore

__all__ = [
    "DSE_COLUMNS",
    "DesignSpaceExplorer",
    "DseResult",
    "build_dse_row",
    "pareto_frontier",
]

# Version 2 adds the per-grid-point adaptive reports (the audit trail of
# adaptive and optimizer runs); version-1 files still load, with no reports.
_RESULT_VERSION = 2

#: Column order of the tidy result table (one row per grid cell).
DSE_COLUMNS = (
    "benchmark",
    "scheme",
    "vdd",
    "p_cell",
    "expected_failures",
    "energy_saving",
    "word_read_energy_fj",
    "scheme_read_energy_fj",
    "total_read_energy_fj",
    "leakage_power_nw",
    "overhead_area_um2",
    "overhead_read_delay_ps",
    "clean_quality",
    "median_quality",
    "quality_at_yield",
    "yield_q90",
    "yield_q99",
    "samples",
)


def pareto_frontier(
    rows: Sequence[Mapping[str, object]],
    *,
    energy_key: str = "total_read_energy_fj",
    quality_key: str = "quality_at_yield",
) -> List[Dict[str, object]]:
    """Non-dominated rows: no other row has lower-or-equal energy *and*
    higher-or-equal quality with at least one strict improvement.

    Rows from different benchmarks are not comparable; callers group first
    (:meth:`DseResult.pareto` does).  The frontier is returned sorted by
    ascending energy.
    """
    frontier: List[Dict[str, object]] = []
    for row in rows:
        dominated = any(
            other[energy_key] <= row[energy_key]
            and other[quality_key] >= row[quality_key]
            and (
                other[energy_key] < row[energy_key]
                or other[quality_key] > row[quality_key]
            )
            for other in rows
        )
        if not dominated:
            frontier.append(dict(row))
    frontier.sort(key=lambda r: (r[energy_key], -r[quality_key]))
    return frontier


def build_dse_row(
    *,
    benchmark_name: str,
    scheme_name: str,
    point,
    dist: QualityDistribution,
    overhead: ReadPathOverhead,
    word_read_energy: float,
    logic_scale: float,
    yield_target: float,
) -> Dict[str, object]:
    """One tidy-table row: the energy/overhead/quality join of one grid cell.

    Shared by the exhaustive explorer and the budgeted optimizer so both
    tables carry exactly the same columns (:data:`DSE_COLUMNS`) computed the
    same way.  The scheme logic's dynamic energy scales with the same CV^2
    law as the array access it accompanies (``logic_scale``).
    """
    scheme_read_energy = overhead.read_power_fj * logic_scale
    return {
        "benchmark": benchmark_name,
        "scheme": scheme_name,
        "vdd": point.vdd,
        "p_cell": point.p_cell,
        "expected_failures": point.expected_failures,
        "energy_saving": point.energy_saving,
        "word_read_energy_fj": word_read_energy,
        "scheme_read_energy_fj": scheme_read_energy,
        "total_read_energy_fj": word_read_energy + scheme_read_energy,
        "leakage_power_nw": point.leakage_power_nw,
        "overhead_area_um2": overhead.area_um2,
        "overhead_read_delay_ps": overhead.read_delay_ps,
        "clean_quality": dist.clean_quality,
        "median_quality": dist.median_quality(),
        "quality_at_yield": dist.quality_at_yield(yield_target),
        "yield_q90": dist.yield_at_quality(0.90),
        "yield_q99": dist.yield_at_quality(0.99),
        "samples": dist.samples,
    }


def _reports_to_payload(
    reports: Mapping[Tuple[str, float, float], AdaptiveBudgetReport],
) -> List[Dict[str, object]]:
    """JSON-safe list form of ``(benchmark, vdd, p_cell) -> report``."""
    return [
        {
            "benchmark": benchmark,
            "vdd": vdd,
            "p_cell": p_cell,
            "report": reports[(benchmark, vdd, p_cell)].to_dict(),
        }
        for benchmark, vdd, p_cell in sorted(reports)
    ]


def _reports_from_payload(
    entries: Optional[Sequence[Mapping[str, object]]],
) -> Dict[Tuple[str, float, float], AdaptiveBudgetReport]:
    """Inverse of :func:`_reports_to_payload` (tuple keys restored)."""
    reports: Dict[Tuple[str, float, float], AdaptiveBudgetReport] = {}
    for entry in entries or ():
        key = (
            str(entry["benchmark"]),
            float(entry["vdd"]),
            float(entry["p_cell"]),
        )
        reports[key] = AdaptiveBudgetReport.from_dict(entry["report"])
    return reports


class DseResult:
    """Tidy result table of one design-space exploration run.

    ``rows`` is a list of plain dicts (columns: :data:`DSE_COLUMNS`), ordered
    benchmark-major then operating-point-major then scheme -- a stable order
    that is bit-identical for any worker count.  ``distributions`` keeps the
    full per-cell :class:`QualityDistribution` objects for callers that need
    more than the tabulated summary statistics, keyed ``[benchmark][(vdd,
    p_cell)][scheme]`` (in-memory runs only; the JSON round-trip persists the
    table, not the distributions).  ``adaptive_reports`` holds the
    per-grid-point :class:`~repro.sim.engine.AdaptiveBudgetReport` audit of
    adaptive-budget runs, keyed ``(benchmark, vdd, p_cell)``; unlike the
    distributions it *does* survive the JSON round-trip, so a pruned or
    adaptive run's audit trail (which budget stopped where, at what CI) is
    not lost by ``save``/``load``.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        rows: List[Dict[str, object]],
        distributions: Optional[
            Dict[str, Dict[Tuple[float, float], Dict[str, QualityDistribution]]]
        ] = None,
        adaptive_reports: Optional[
            Dict[Tuple[str, float, float], AdaptiveBudgetReport]
        ] = None,
    ) -> None:
        self.spec = spec
        self.rows = rows
        self.distributions = distributions if distributions is not None else {}
        self.adaptive_reports = (
            dict(adaptive_reports) if adaptive_reports is not None else {}
        )

    def __len__(self) -> int:
        return len(self.rows)

    def benchmarks(self) -> List[str]:
        """Benchmark names present in the table, in row order."""
        seen: List[str] = []
        for row in self.rows:
            if row["benchmark"] not in seen:
                seen.append(row["benchmark"])
        return seen

    def select(
        self,
        benchmark: Optional[str] = None,
        scheme: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Rows filtered by benchmark and/or scheme name."""
        return [
            row
            for row in self.rows
            if (benchmark is None or row["benchmark"] == benchmark)
            and (scheme is None or row["scheme"] == scheme)
        ]

    def pareto(self, benchmark: Optional[str] = None) -> List[Dict[str, object]]:
        """Energy / quality-at-yield Pareto frontier, per benchmark.

        With ``benchmark=None`` the frontier of every benchmark is computed
        independently and concatenated (rows keep their ``benchmark`` column,
        so the groups stay distinguishable).
        """
        names = [benchmark] if benchmark is not None else self.benchmarks()
        frontier: List[Dict[str, object]] = []
        for name in names:
            frontier.extend(pareto_frontier(self.select(benchmark=name)))
        return frontier

    def energy_at_iso_quality(
        self, quality_target: float, benchmark: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Per (benchmark, scheme): the cheapest operating point meeting a
        quality-at-yield floor -- the "energy at iso-quality" view.

        Schemes that meet ``quality_target`` at no grid voltage are omitted.
        """
        best: Dict[tuple, Dict[str, object]] = {}
        for row in self.rows:
            if benchmark is not None and row["benchmark"] != benchmark:
                continue
            if row["quality_at_yield"] < quality_target:
                continue
            key = (row["benchmark"], row["scheme"])
            if (
                key not in best
                or row["total_read_energy_fj"] < best[key]["total_read_energy_fj"]
            ):
                best[key] = row
        return [best[key] for key in sorted(best)]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON view (spec + table + adaptive reports; distributions excluded)."""
        data: Dict[str, object] = {
            "version": _RESULT_VERSION,
            "spec": self.spec.to_dict(),
            "rows": self.rows,
        }
        if self.adaptive_reports:
            data["adaptive_reports"] = _reports_to_payload(
                self.adaptive_reports
            )
        return data

    def save(self, path: str) -> None:
        """Write the result table as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "DseResult":
        """Load a result table previously written by :meth:`save`.

        Version-1 files (written before the adaptive-report round-trip)
        still load; they simply carry no reports.
        """
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") not in (1, _RESULT_VERSION):
            raise ValueError(
                f"result file {path!r} has unsupported version "
                f"{data.get('version')!r}"
            )
        return cls(
            ExperimentSpec.from_dict(data["spec"]),
            data["rows"],
            adaptive_reports=_reports_from_payload(
                data.get("adaptive_reports")
            ),
        )


class DesignSpaceExplorer:
    """Evaluates an :class:`ExperimentSpec` grid end-to-end.

    Parameters
    ----------
    spec:
        The declarative sweep description.
    workers:
        Process fan-out of each grid point's Monte-Carlo sweep (results are
        bit-identical for any count -- the engine's seeding contract).
    checkpoint_dir:
        Optional directory of per-grid-point JSON result caches.  Each
        (operating point, benchmark) cell checkpoints independently under a
        name derived from its configuration hash, so re-running any spec that
        shares grid points replays them instantly.
    store:
        Optional :class:`~repro.store.ResultStore`.  Grid points whose
        configuration hash is already stored are served from it --
        bit-identical, with zero new die evaluations -- and computed points
        are recorded into it, making the explorer a store-backed view: a
        re-run against a warm store recomputes only the points a spec or
        code change dirtied (see :meth:`dirty_points`).
    executor:
        Optional shard-executor selection forwarded to every grid point's
        sweep: ``None``/``"local"`` (process pool), ``"inline"``, or an
        :class:`~repro.sim.executor.ExecutorSpec` (e.g. a ``tcp``
        coordinator serving remote workers).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        workers: int = 1,
        checkpoint_dir: Optional[str] = None,
        store: Optional["ResultStore"] = None,
        executor: Optional[object] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._spec = spec
        self._workers = workers
        self._checkpoint_dir = checkpoint_dir
        self._store = store
        self._executor = executor
        self._adaptive_reports: Dict[
            Tuple[str, float, float], AdaptiveBudgetReport
        ] = {}
        self._run_stats: Dict[Tuple[str, float, float], SweepRunStats] = {}

    @property
    def spec(self) -> ExperimentSpec:
        """The sweep description."""
        return self._spec

    @property
    def adaptive_reports(
        self,
    ) -> Dict[Tuple[str, float, float], AdaptiveBudgetReport]:
        """Adaptive-budget outcomes of the last :meth:`run`, keyed by
        ``(benchmark, vdd, p_cell)`` (empty for fixed-budget specs)."""
        return dict(self._adaptive_reports)

    @property
    def run_stats(self) -> Dict[Tuple[str, float, float], SweepRunStats]:
        """Per-grid-point :class:`~repro.sim.engine.SweepRunStats` of the last
        :meth:`run`, keyed by ``(benchmark, vdd, p_cell)``.  With a warm
        store, every entry has ``store_hit=True`` and ``evaluated_dies=0``."""
        return dict(self._run_stats)

    def dirty_points(self) -> List["GridPointStatus"]:
        """Grid points a :meth:`run` would actually recompute against the
        configured store (requires ``store``); everything else is served
        from disk.  A spec edit, benchmark-data change, or engine version
        bump moves the affected points' configuration hashes, which is what
        marks them dirty."""
        if self._store is None:
            raise ValueError("dirty_points requires a store")
        from repro.store.invalidate import dirty_grid_points

        return dirty_grid_points(self._store, self._spec)

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def scheme_overheads(self) -> Dict[str, ReadPathOverhead]:
        """Per-scheme read-path overhead at nominal voltage (the Fig. 6 join).

        ``no-protection`` is the zero-overhead reference; every other scheme
        must be covered by the :class:`OverheadModel` comparison.
        """
        spec = self._spec
        organization = spec.organization
        schemes = self._build_schemes()
        report = evaluate_overhead_point(
            organization, lut_realisation=spec.scheme_grid.lut_realisation
        )
        overheads: Dict[str, ReadPathOverhead] = {}
        for scheme in schemes:
            if scheme.name in report.overheads:
                overheads[scheme.name] = report.overheads[scheme.name]
            elif scheme.name == "no-protection":
                overheads[scheme.name] = ReadPathOverhead(
                    scheme=scheme.name,
                    read_power_fj=0.0,
                    read_delay_ps=0.0,
                    area_um2=0.0,
                )
            else:
                raise ValueError(
                    f"no overhead model covers scheme {scheme.name!r}"
                )
        return overheads

    def _build_schemes(self) -> List[ProtectionScheme]:
        return [
            build_scheme(spec, self._spec.geometry.word_width)
            for spec in self._spec.scheme_grid.specs
        ]

    def _checkpoint_path(
        self, engine: SweepEngine, benchmark, benchmark_name: str
    ) -> Optional[str]:
        if self._checkpoint_dir is None:
            return None
        os.makedirs(self._checkpoint_dir, exist_ok=True)
        point_hash = engine.config_hash(benchmark)[:16]
        return os.path.join(
            self._checkpoint_dir, f"dse-{benchmark_name}-{point_hash}.json"
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> DseResult:
        """Sweep the full grid and return the joined result table."""
        self._adaptive_reports = {}
        self._run_stats = {}
        spec = self._spec
        organization = spec.organization
        scaling = spec.operating_grid.scaling_model(organization)
        nominal_vdd = spec.operating_grid.nominal_vdd
        points = spec.operating_points()
        overheads = self.scheme_overheads()
        yield_target = spec.quality_yield_target

        rows: List[Dict[str, object]] = []
        distributions: Dict[
            str, Dict[Tuple[float, float], Dict[str, QualityDistribution]]
        ] = {}
        for benchmark_name in spec.benchmarks.names:
            benchmark = build_benchmark(
                benchmark_name,
                scale=spec.benchmarks.scale,
                seed=spec.benchmarks.seed,
            )
            per_point: Dict[
                Tuple[float, float], Dict[str, QualityDistribution]
            ] = {}
            distributions[benchmark_name] = per_point
            for point in points:
                config = spec.experiment_config(point, benchmark_name)
                engine = SweepEngine(config)
                checkpoint = self._checkpoint_path(
                    engine, benchmark, benchmark_name
                )
                results = engine.run(
                    benchmark,
                    workers=self._workers,
                    checkpoint=checkpoint,
                    store=self._store,
                    executor=self._executor,
                )
                if engine.last_adaptive_report is not None:
                    self._adaptive_reports[
                        (benchmark_name, point.vdd, point.p_cell)
                    ] = engine.last_adaptive_report
                if engine.last_run_stats is not None:
                    self._run_stats[
                        (benchmark_name, point.vdd, point.p_cell)
                    ] = engine.last_run_stats
                per_point[(point.vdd, point.p_cell)] = results
                logic_scale = (point.vdd / nominal_vdd) ** 2
                word_read_energy = scaling.read_energy_fj(point.vdd)
                for scheme_name in (s.name for s in engine.schemes):
                    rows.append(
                        build_dse_row(
                            benchmark_name=benchmark_name,
                            scheme_name=scheme_name,
                            point=point,
                            dist=results[scheme_name],
                            overhead=overheads[scheme_name],
                            word_read_energy=word_read_energy,
                            logic_scale=logic_scale,
                            yield_target=yield_target,
                        )
                    )
        return DseResult(
            spec,
            rows,
            distributions,
            adaptive_reports=self._adaptive_reports,
        )
