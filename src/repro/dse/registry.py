"""Unified design-space registry: schemes, benchmarks, and Pcell models.

A declarative :class:`~repro.dse.spec.ExperimentSpec` names every axis of a
design-space sweep by string -- protection schemes, application benchmarks,
and the ``Pcell(VDD)`` model -- so each axis needs a registry that turns the
name back into an object.  This module extends the protection-scheme registry
(:func:`repro.sim.engine.build_scheme`) into one namespaced registry covering
all three kinds:

======================  ==========================================  ==========================
kind                    built-in names                              factory signature
======================  ==========================================  ==========================
``scheme``              ``no-protection``/``none``, ``secded``,     ``(word_width)``
                        ``p-ecc``, ``bit-shuffle-nfm<k>`` and
                        every canonical ``scheme.name``
``benchmark``           ``elasticnet``, ``pca``, ``knn``            ``(scale, seed)``
``pcell-model``         ``calibrated-28nm`` (alias ``default``),    ``()`` / model parameters
                        ``gaussian``
``scenario``            ``iid-pcell`` (aliases ``iid``,             scenario parameters
                        ``default``), ``aged``, ``clustered``,
                        ``repaired``
======================  ==========================================  ==========================

Every name a built object reports (``scheme.name``, ``benchmark.name``) is
itself a valid spec, so configurations serialise by name alone.  New entries
register with :meth:`DesignRegistry.register`; parameterised families (such
as the ``bit-shuffle-nfm<k>`` schemes) register a fallback resolver with
:meth:`DesignRegistry.register_fallback`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.base import ProtectionScheme
from repro.faultmodel.pcell import PcellModel
from repro.scenarios.base import FaultScenario
from repro.scenarios.catalog import SCENARIO_NAMES
from repro.scenarios.catalog import build_scenario as _build_scenario_catalog
from repro.sim.engine import build_scheme as _build_scheme_registry
from repro.sim.experiment import (
    BENCHMARK_NAMES,
    BenchmarkDefinition,
    benchmark_by_name,
)

__all__ = [
    "REGISTRY",
    "DesignRegistry",
    "build_benchmark",
    "build_pcell_model",
    "build_scenario",
    "build_scheme",
]


class DesignRegistry:
    """Namespaced factory registry for the design-space axes.

    Each *kind* (``scheme``, ``benchmark``, ``pcell-model``) holds exact-name
    factories plus ordered fallback resolvers for parameterised spec
    families.  Lookup is case-insensitive on the exact names; a fallback
    receives the original spec string and either returns the built object or
    raises ``ValueError`` explaining what it accepts.
    """

    KINDS = ("scheme", "benchmark", "pcell-model", "scenario")

    def __init__(self) -> None:
        self._factories: Dict[str, Dict[str, Callable[..., object]]] = {
            kind: {} for kind in self.KINDS
        }
        self._fallbacks: Dict[str, List[Callable[..., object]]] = {
            kind: [] for kind in self.KINDS
        }

    def _check_kind(self, kind: str) -> None:
        if kind not in self._factories:
            raise ValueError(
                f"unknown registry kind {kind!r}; expected one of "
                f"{', '.join(self.KINDS)}"
            )

    def register(
        self, kind: str, name: str, factory: Optional[Callable[..., object]] = None
    ):
        """Register ``factory`` under ``kind``/``name`` (usable as a decorator).

        Re-registering an existing name raises -- a silently shadowed axis
        entry would change what a saved spec builds.
        """
        self._check_kind(kind)

        def _register(fn: Callable[..., object]) -> Callable[..., object]:
            key = name.strip().lower()
            if key in self._factories[kind]:
                raise ValueError(f"{kind} {name!r} is already registered")
            self._factories[kind][key] = fn
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    def register_fallback(self, kind: str, resolver: Callable[..., object]):
        """Register a resolver tried, in order, for specs with no exact entry."""
        self._check_kind(kind)
        self._fallbacks[kind].append(resolver)
        return resolver

    def build(self, kind: str, spec: str, **kwargs) -> object:
        """Instantiate the ``kind`` object named by ``spec``.

        Exact names win; otherwise the fallback resolvers are tried in
        registration order, each signalling "not mine" with ``ValueError``.
        """
        self._check_kind(kind)
        normalized = spec.strip().lower()
        factory = self._factories[kind].get(normalized)
        if factory is not None:
            return factory(**kwargs)
        errors: List[str] = []
        for resolver in self._fallbacks[kind]:
            try:
                return resolver(spec, **kwargs)
            except ValueError as error:
                errors.append(str(error))
        raise ValueError(
            f"unknown {kind} spec {spec!r}; registered names: "
            f"{', '.join(self.names(kind)) or '(none)'}"
            + (f"; resolvers said: {' | '.join(errors)}" if errors else "")
        )

    def names(self, kind: str) -> List[str]:
        """Exact names registered under ``kind`` (fallback families excluded)."""
        self._check_kind(kind)
        return sorted(self._factories[kind])


#: The process-wide registry all built-in axes register with.
REGISTRY = DesignRegistry()


# --------------------------------------------------------------------------- #
# Built-in entries
# --------------------------------------------------------------------------- #
# Protection schemes: the engine's spec grammar (exact names plus the
# bit-shuffle-nfm<k> family and canonical report names) is the fallback, so
# every historical spec keeps working and custom schemes can still claim an
# exact name ahead of it.
REGISTRY.register_fallback("scheme", _build_scheme_registry)

for _name in BENCHMARK_NAMES:
    REGISTRY.register(
        "benchmark",
        _name,
        lambda scale=1.0, seed=17, _name=_name: benchmark_by_name(
            _name, scale=scale, seed=seed
        ),
    )

# Fault scenarios: exact catalog names, with the catalog's own resolver as
# the fallback so the `iid` / `default` aliases keep working.
for _name in SCENARIO_NAMES:
    REGISTRY.register(
        "scenario",
        _name,
        lambda _name=_name, **params: _build_scenario_catalog(_name, **params),
    )
REGISTRY.register_fallback("scenario", _build_scenario_catalog)

REGISTRY.register("pcell-model", "calibrated-28nm", PcellModel.calibrated_28nm)
REGISTRY.register("pcell-model", "default", PcellModel.calibrated_28nm)
REGISTRY.register(
    "pcell-model",
    "gaussian",
    lambda v_crit_mean, v_crit_sigma: PcellModel(
        v_crit_mean=float(v_crit_mean), v_crit_sigma=float(v_crit_sigma)
    ),
)


# --------------------------------------------------------------------------- #
# Convenience wrappers (the per-kind entry points most callers want)
# --------------------------------------------------------------------------- #
def build_scheme(spec: str, word_width: int) -> ProtectionScheme:
    """Instantiate a protection scheme from its registry spec."""
    return REGISTRY.build("scheme", spec, word_width=word_width)


def build_benchmark(
    name: str, scale: float = 1.0, seed: int = 17
) -> BenchmarkDefinition:
    """Instantiate a Table 1 benchmark from its registry name."""
    return REGISTRY.build("benchmark", name, scale=scale, seed=seed)


def build_pcell_model(name: str, **params) -> PcellModel:
    """Instantiate a ``Pcell(VDD)`` model from its registry name."""
    return REGISTRY.build("pcell-model", name, **params)


def build_scenario(name: str, **params) -> FaultScenario:
    """Instantiate a fault-scenario pipeline from its registry name."""
    return REGISTRY.build("scenario", name, **params)
