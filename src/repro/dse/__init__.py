"""Cross-layer design-space exploration (DSE).

The paper's four models -- voltage/fault (:mod:`repro.faultmodel`), quality
(:mod:`repro.sim`), energy (:mod:`repro.hardware.energy`), and overhead
(:mod:`repro.hardware.overhead`) -- answer single-figure questions on their
own.  This package joins them behind one declarative surface:

* :mod:`repro.dse.spec` -- :class:`ExperimentSpec`, the layered, serialisable
  description of a sweep grid (geometry / operating points / schemes /
  Monte-Carlo budget / benchmarks);
* :mod:`repro.dse.registry` -- the unified name registry for schemes,
  benchmarks, and Pcell models that makes specs buildable from JSON;
* :mod:`repro.dse.evaluate` -- the grid-point evaluators every figure is a
  thin view of (quality, MSE, overhead);
* :mod:`repro.dse.explore` -- :class:`DesignSpaceExplorer`, which sweeps the
  grid through the parallel :class:`~repro.sim.engine.SweepEngine`, joins
  energy and overhead, and extracts the energy/quality Pareto frontier;
* :mod:`repro.dse.optimize` -- :class:`ParetoOptimizer`, the budgeted
  successive-halving alternative that recovers the same frontier for a
  fraction of the exhaustive die bill (with :mod:`repro.dse.surrogate`
  ordering its rung-0 probes).

CLI: ``repro-faulty-mem dse run|pareto|report|optimize --spec grid.json``.
"""

from repro.dse.evaluate import (
    evaluate_mse_point,
    evaluate_overhead_point,
    evaluate_quality_point,
    legacy_fault_maps,
)
from repro.dse.explore import (
    DSE_COLUMNS,
    DesignSpaceExplorer,
    DseResult,
    build_dse_row,
    pareto_frontier,
)
from repro.dse.optimize import OptimizeResult, ParetoOptimizer, PruneEvent
from repro.dse.registry import (
    REGISTRY,
    DesignRegistry,
    build_benchmark,
    build_pcell_model,
    build_scheme,
)
from repro.dse.spec import (
    BenchmarkGridSpec,
    ExperimentSpec,
    GeometrySpec,
    McBudgetSpec,
    OperatingGridSpec,
    OptimizerSpec,
    SchemeGridSpec,
)
from repro.dse.surrogate import QualitySurrogate

__all__ = [
    "BenchmarkGridSpec",
    "DSE_COLUMNS",
    "DesignRegistry",
    "DesignSpaceExplorer",
    "DseResult",
    "ExperimentSpec",
    "GeometrySpec",
    "McBudgetSpec",
    "OperatingGridSpec",
    "OptimizeResult",
    "OptimizerSpec",
    "ParetoOptimizer",
    "PruneEvent",
    "QualitySurrogate",
    "REGISTRY",
    "SchemeGridSpec",
    "build_benchmark",
    "build_dse_row",
    "build_pcell_model",
    "build_scheme",
    "evaluate_mse_point",
    "evaluate_overhead_point",
    "evaluate_quality_point",
    "legacy_fault_maps",
    "pareto_frontier",
]
