"""Budgeted Pareto optimizer: surrogate-ordered successive halving.

The exhaustive explorer (:class:`~repro.dse.explore.DesignSpaceExplorer`)
spends the same fixed Monte-Carlo budget on every grid cell, including the
cells whose rows are obviously dominated after a handful of dies.  The
:class:`ParetoOptimizer` recovers the same energy-versus-quality-at-yield
Pareto frontier for a fraction of that die bill by racing the cells through
*successive halving*:

* every ``(benchmark, operating point)`` cell gets an adaptive-budget probe
  (:class:`~repro.sim.engine.AdaptiveBudget`, PR 5's confidence-driven inner
  loop) capped at ``rung0_dies`` dies in rung 0;
* after each rung a pruning pass drops every row another row *provably*
  dominates -- lower-or-equal energy and a strictly separated quality
  confidence band (``q_lo_B > q_hi_A + frontier_slack``).  Band overlap --
  including the exact ties the quality sketch's quantisation produces for
  near-saturated rows -- never prunes, which is what preserves frontier
  recall: a pruned row is dominated under *every* distribution consistent
  with the bands, not merely under the point estimates;
* cells whose unpruned rows all reached the probe's ``target_ci`` stop
  (resolved); cells whose rows are all pruned stop (retired); the rest carry
  their engine round state into the next rung, whose die cap grows by
  ``eta`` (the engine's cap-resumable checkpoints make the larger-cap run a
  pure continuation -- no die is ever simulated twice).

A cheap deterministic surrogate (:mod:`repro.dse.surrogate`) fitted on warm
store rows orders the rung-0 probes so predicted-frontier cells are measured
first; it only ranks, never prunes, so a cold or misfit surrogate costs
ordering, not correctness.

Determinism contract: for a fixed master seed the rung results, the pruning
decisions, and the final frontier are bit-identical for every worker count
and executor backend.  Probes fold in canonical shard order inside the
engine, rung outcomes are folded in canonical grid order (benchmark-major,
then operating point, then scheme), and each pruning pass tests rows against
a snapshot of the pass's surviving set -- dominance is transitive, so the
outcome is independent of the order rows are examined in.

With a :class:`~repro.store.ResultStore`, every finished rung is recorded as
a ``dse-rung`` record -- the partial per-scheme distributions *plus* the
engine's round-state checkpoint -- keyed by the cap-free configuration hash,
the rung index, and the cap.  A killed run replays finished rungs from the
store with zero die evaluations, restores the round state they ended at, and
continues mid-schedule bit-identically even if the checkpoint directory was
lost.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.dse.explore import (
    DesignSpaceExplorer,
    DseResult,
    _reports_from_payload,
    _reports_to_payload,
    build_dse_row,
)
from repro.dse.registry import build_benchmark
from repro.dse.spec import ExperimentSpec, OptimizerSpec
from repro.dse.surrogate import (
    QualitySurrogate,
    rank_cells,
    warm_rows_from_store,
)
from repro.sim.engine import (
    AdaptiveBudgetReport,
    ExperimentConfig,
    QualityDistribution,
    SweepEngine,
    _write_checkpoint_payload,
)
from repro.store.schema import (
    adaptive_report_from_payload,
    quality_results_from_payload,
    quality_results_to_payload,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.energy import OperatingPoint
    from repro.store.store import ResultStore

__all__ = [
    "OptimizeResult",
    "ParetoOptimizer",
    "PruneEvent",
]

_OPTIMIZE_RESULT_VERSION = 1

#: Audit columns the optimizer adds to every tidy-table row.
OPTIMIZE_AUDIT_COLUMNS = (
    "quality_lo",
    "quality_hi",
    "ci_half_width",
    "dies",
    "rung",
    "pruned",
    "pruned_by",
)


@dataclass(frozen=True)
class PruneEvent:
    """One pruning decision: which row was dropped, by whom, at which rung.

    ``by_quality_lo > quality_hi + slack`` (with ``by_*`` naming the
    dominating row, at lower-or-equal energy) is the inequality that fired;
    keeping both band edges in the event makes every pruning decision
    re-checkable from the log alone.
    """

    rung: int
    benchmark: str
    scheme: str
    vdd: float
    p_cell: float
    energy: float
    quality_hi: float
    by_scheme: str
    by_vdd: float
    by_quality_lo: float
    slack: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view (round-trips through :meth:`from_dict`)."""
        return {
            "rung": self.rung,
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "vdd": self.vdd,
            "p_cell": self.p_cell,
            "energy": self.energy,
            "quality_hi": self.quality_hi,
            "by_scheme": self.by_scheme,
            "by_vdd": self.by_vdd,
            "by_quality_lo": self.by_quality_lo,
            "slack": self.slack,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PruneEvent":
        """Rebuild an event saved by :meth:`to_dict`."""
        return cls(
            rung=int(data["rung"]),
            benchmark=str(data["benchmark"]),
            scheme=str(data["scheme"]),
            vdd=float(data["vdd"]),
            p_cell=float(data["p_cell"]),
            energy=float(data["energy"]),
            quality_hi=float(data["quality_hi"]),
            by_scheme=str(data["by_scheme"]),
            by_vdd=float(data["by_vdd"]),
            by_quality_lo=float(data["by_quality_lo"]),
            slack=float(data["slack"]),
        )


@dataclass
class _RowState:
    """Live pruning state of one (cell, scheme) row."""

    energy: float
    quality_lo: float = 0.0
    quality_hi: float = 0.0
    half_width: float = 0.0
    pruned: bool = False
    pruned_by: Optional[str] = None


@dataclass(eq=False)
class _CellState:
    """One (benchmark, operating point) cell of the successive-halving race."""

    benchmark_name: str
    point: "OperatingPoint"
    config: ExperimentConfig
    scheme_names: List[str]
    caps: List[int]
    resumable_hash: str
    checkpoint: str
    rows: Dict[str, _RowState]
    status: str = "active"
    last_rung: int = -1
    dies: int = 0
    evaluated_dies: int = 0
    exhaustive_dies: int = 0
    store_hits: int = 0
    results: Optional[Dict[str, QualityDistribution]] = None
    report: Optional[AdaptiveBudgetReport] = None

    @property
    def key(self) -> Tuple[str, float, float]:
        return (self.benchmark_name, self.point.vdd, self.point.p_cell)


class OptimizeResult:
    """Outcome of one budgeted optimization run.

    ``rows`` is the tidy DSE table (same columns and canonical order as
    :class:`~repro.dse.explore.DseResult`) extended with the audit columns of
    :data:`OPTIMIZE_AUDIT_COLUMNS`: each row carries its quality confidence
    band, the dies its cell spent, the last rung it was probed at, and -- if
    it was pruned -- which row eliminated it.  ``prune_log`` is the ordered
    list of :class:`PruneEvent` decisions, ``surrogate_order`` the rung-0
    probe order the surrogate chose, and ``adaptive_reports`` the final
    per-cell :class:`~repro.sim.engine.AdaptiveBudgetReport` audit.

    ``total_dies`` counts the dies behind the final distributions,
    ``evaluated_dies`` the dies actually simulated by *this* run (lower when
    rungs replayed from a warm store), and ``exhaustive_dies`` what the
    fixed-budget grid sweep of the same spec would have cost -- the
    denominator of the headline savings ratio.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        rows: List[Dict[str, object]],
        prune_log: List[PruneEvent],
        adaptive_reports: Optional[
            Dict[Tuple[str, float, float], AdaptiveBudgetReport]
        ] = None,
        surrogate_order: Optional[List[Tuple[str, float, float]]] = None,
        cell_statuses: Optional[List[Dict[str, object]]] = None,
        total_dies: int = 0,
        evaluated_dies: int = 0,
        exhaustive_dies: int = 0,
        store_hits: int = 0,
    ) -> None:
        self.spec = spec
        self.rows = rows
        self.prune_log = list(prune_log)
        self.adaptive_reports = dict(adaptive_reports or {})
        self.surrogate_order = [tuple(k) for k in (surrogate_order or [])]
        self.cell_statuses = list(cell_statuses or [])
        self.total_dies = int(total_dies)
        self.evaluated_dies = int(evaluated_dies)
        self.exhaustive_dies = int(exhaustive_dies)
        self.store_hits = int(store_hits)

    def __len__(self) -> int:
        return len(self.rows)

    def benchmarks(self) -> List[str]:
        """Benchmark names present in the table, in row order."""
        seen: List[str] = []
        for row in self.rows:
            if row["benchmark"] not in seen:
                seen.append(row["benchmark"])
        return seen

    def frontier(
        self, benchmark: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The surviving (unpruned) rows -- the recovered Pareto frontier.

        Per benchmark, sorted by ascending energy (quality breaks ties,
        descending), matching :func:`~repro.dse.explore.pareto_frontier`'s
        ordering of the exhaustive frontier.
        """
        names = [benchmark] if benchmark is not None else self.benchmarks()
        frontier: List[Dict[str, object]] = []
        for name in names:
            survivors = [
                dict(row)
                for row in self.rows
                if row["benchmark"] == name and not row["pruned"]
            ]
            survivors.sort(
                key=lambda r: (
                    r["total_read_energy_fj"],
                    -r["quality_at_yield"],
                )
            )
            frontier.extend(survivors)
        return frontier

    def frontier_keys(self) -> List[Tuple[str, str, float]]:
        """Sorted ``(benchmark, scheme, vdd)`` identity of every frontier row.

        The comparison handle for benches and CI: optimizer qualities are
        sketch-quantised while the exhaustive sweep's are exact, so frontier
        *membership* -- not row values -- is what the recall gates diff.
        """
        return sorted(
            (str(row["benchmark"]), str(row["scheme"]), float(row["vdd"]))
            for row in self.rows
            if not row["pruned"]
        )

    def savings_ratio(self) -> float:
        """Exhaustive-to-optimized die ratio (``inf`` for a zero-die run)."""
        if self.total_dies == 0:
            return float("inf")
        return self.exhaustive_dies / self.total_dies

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON view of the full audit trail."""
        return {
            "version": _OPTIMIZE_RESULT_VERSION,
            "spec": self.spec.to_dict(),
            "rows": self.rows,
            "prune_log": [event.to_dict() for event in self.prune_log],
            "adaptive_reports": _reports_to_payload(self.adaptive_reports),
            "surrogate_order": [list(key) for key in self.surrogate_order],
            "cell_statuses": self.cell_statuses,
            "total_dies": self.total_dies,
            "evaluated_dies": self.evaluated_dies,
            "exhaustive_dies": self.exhaustive_dies,
            "store_hits": self.store_hits,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "OptimizeResult":
        """Load a result previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != _OPTIMIZE_RESULT_VERSION:
            raise ValueError(
                f"optimizer result file {path!r} has unsupported version "
                f"{data.get('version')!r}"
            )
        return cls(
            ExperimentSpec.from_dict(data["spec"]),
            data["rows"],
            [PruneEvent.from_dict(entry) for entry in data["prune_log"]],
            adaptive_reports=_reports_from_payload(
                data.get("adaptive_reports")
            ),
            surrogate_order=[
                (str(b), float(v), float(p))
                for b, v, p in data.get("surrogate_order", [])
            ],
            cell_statuses=data.get("cell_statuses", []),
            total_dies=data.get("total_dies", 0),
            evaluated_dies=data.get("evaluated_dies", 0),
            exhaustive_dies=data.get("exhaustive_dies", 0),
            store_hits=data.get("store_hits", 0),
        )

    def as_dse_result(self) -> DseResult:
        """The surviving rows as a :class:`DseResult` (audit columns kept),
        so the optimizer's output feeds every existing table consumer."""
        return DseResult(
            self.spec,
            [dict(row) for row in self.rows if not row["pruned"]],
            adaptive_reports=self.adaptive_reports,
        )


class ParetoOptimizer:
    """Successive-halving frontier recovery over an :class:`ExperimentSpec`.

    Parameters
    ----------
    spec:
        The grid to optimize over.  Its ``budget`` (fixed mode) defines the
        exhaustive baseline; its ``optimizer`` section -- or the ``optimizer``
        argument, which overrides it -- parameterises the rung schedule.
    workers / executor:
        Fan-out of each probe's Monte-Carlo shards, forwarded to the engine
        (bit-identical results for every combination -- the engine's
        determinism contract, which the optimizer inherits wholesale).
    checkpoint_dir:
        Directory of per-cell engine round-state checkpoints.  ``None`` uses
        a run-private temporary directory: rungs still resume *within* the
        run, and a store (below) covers resumption across runs.
    store:
        Optional :class:`~repro.store.ResultStore`.  Finished rungs are
        recorded as ``dse-rung`` records and replayed on re-runs with zero
        die evaluations; warm quality rows also feed the rung-0 surrogate.
    warm_result:
        Optional prior :class:`DseResult` whose rows feed the surrogate (in
        addition to store rows).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        optimizer: Optional[OptimizerSpec] = None,
        workers: int = 1,
        checkpoint_dir: Optional[str] = None,
        store: Optional["ResultStore"] = None,
        executor: Optional[object] = None,
        warm_result: Optional[DseResult] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if spec.budget.mode != "fixed":
            raise ValueError(
                "the optimizer requires a fixed-mode budget (it supplies its "
                "own adaptive probes; the fixed budget is the exhaustive "
                "baseline being beaten)"
            )
        if optimizer is None:
            optimizer = spec.optimizer
        if optimizer is None:
            optimizer = OptimizerSpec()
        if not isinstance(optimizer, OptimizerSpec):
            raise ValueError(
                f"optimizer must be an OptimizerSpec, got "
                f"{type(optimizer).__name__}"
            )
        self._spec = spec
        self._optimizer = optimizer
        self._workers = workers
        self._checkpoint_dir = checkpoint_dir
        self._store = store
        self._executor = executor
        self._warm_result = warm_result

    @property
    def spec(self) -> ExperimentSpec:
        """The grid being optimized."""
        return self._spec

    @property
    def optimizer_spec(self) -> OptimizerSpec:
        """The effective rung schedule and pruning rule."""
        return self._optimizer

    # ------------------------------------------------------------------ #
    # Cell construction
    # ------------------------------------------------------------------ #
    def _build_cells(
        self, checkpoint_dir: str
    ) -> Tuple[List[_CellState], Dict[str, object]]:
        """Canonical cell list (benchmark-major, then operating point)."""
        spec = self._spec
        opt = self._optimizer
        scaling = spec.operating_grid.scaling_model(spec.organization)
        nominal_vdd = spec.operating_grid.nominal_vdd
        overheads = DesignSpaceExplorer(spec).scheme_overheads()
        points = spec.operating_points()

        cells: List[_CellState] = []
        benchmark_defs: Dict[str, object] = {}
        for benchmark_name in spec.benchmarks.names:
            benchmark_defs[benchmark_name] = build_benchmark(
                benchmark_name,
                scale=spec.benchmarks.scale,
                seed=spec.benchmarks.seed,
            )
            for point in points:
                config = spec.experiment_config(point, benchmark_name)
                counts = config.evaluated_counts()
                # Every rung must be able to seed each stratum with the
                # engine's minimum two dies, whatever rung0_dies asks for.
                base = max(opt.rung0_dies or 0, 2 * len(counts))
                caps = opt.rung_caps(base)
                probe = replace(
                    config, adaptive=opt.adaptive_budget(caps[0])
                )
                engine = SweepEngine(probe)
                resumable_hash = engine.config_hash(
                    benchmark_defs[benchmark_name],
                    adaptive_cap_resumable=True,
                )
                logic_scale = (point.vdd / nominal_vdd) ** 2
                word_read_energy = scaling.read_energy_fj(point.vdd)
                rows = {
                    scheme.name: _RowState(
                        energy=word_read_energy
                        + overheads[scheme.name].read_power_fj * logic_scale
                    )
                    for scheme in engine.schemes
                }
                cells.append(
                    _CellState(
                        benchmark_name=benchmark_name,
                        point=point,
                        config=config,
                        scheme_names=[s.name for s in engine.schemes],
                        caps=caps,
                        resumable_hash=resumable_hash,
                        checkpoint=os.path.join(
                            checkpoint_dir,
                            f"optimize-{benchmark_name}-"
                            f"{resumable_hash[:16]}.json",
                        ),
                        rows=rows,
                        exhaustive_dies=len(counts)
                        * spec.budget.samples_per_count,
                    )
                )
        join = {
            "overheads": overheads,
            "scaling": scaling,
            "nominal_vdd": nominal_vdd,
            "benchmark_defs": benchmark_defs,
        }
        return cells, join

    def _rung0_order(self, cells: List[_CellState]) -> List[int]:
        """Surrogate-ranked rung-0 probe order (cell indices).

        Warm rows come from the store (when ``warm_start``) and from an
        explicit ``warm_result``; with neither, the surrogate's analytic
        prior (each cell's fault-free point mass) supplies the ordering.
        The order never changes any result -- rung outcomes fold in
        canonical cell order regardless -- it decides which cells have
        audit state first if the run is killed mid-rung.
        """
        opt = self._optimizer
        warm: List[Dict[str, object]] = []
        if self._store is not None and opt.warm_start:
            warm.extend(
                warm_rows_from_store(
                    self._store, self._spec.quality_yield_target
                )
            )
        if self._warm_result is not None:
            warm.extend(
                {
                    "scheme": row["scheme"],
                    "p_cell": row["p_cell"],
                    "quality_at_yield": row["quality_at_yield"],
                }
                for row in self._warm_result.rows
            )
        model = QualitySurrogate().fit(warm)
        cell_rows = [
            [
                {
                    "energy": cell.rows[name].energy,
                    "quality": model.predict(
                        name,
                        cell.point.p_cell,
                        zero_fault_probability=(
                            cell.config.zero_fault_probability
                        ),
                    ),
                }
                for name in cell.scheme_names
            ]
            for cell in cells
        ]
        return rank_cells(cell_rows)

    # ------------------------------------------------------------------ #
    # Rung execution
    # ------------------------------------------------------------------ #
    def _run_rung(
        self,
        cell: _CellState,
        rung: int,
        cap: int,
        benchmark_def,
    ) -> None:
        """Advance one cell to ``cap`` cumulative dies (resume or replay).

        Store replay restores the engine's round-state checkpoint recorded
        with the rung, so the *next* rung continues from exactly the state
        the original run left -- the sequential rung schedule is the one
        canonical path, whether rungs were computed or replayed.
        """
        opt = self._optimizer
        rung_key = f"{cell.resumable_hash}-rung{rung}-cap{cap}"
        record = None
        if self._store is not None:
            record = self._store.get_record(rung_key, kind="dse-rung")
        if record is not None:
            payload = record["payload"]
            results = quality_results_from_payload(payload["results"])
            report = adaptive_report_from_payload(
                payload["results"].get("adaptive_report")
            )
            if report is None:  # pragma: no cover - hand-edited store
                raise ValueError(
                    f"dse-rung record {rung_key!r} carries no adaptive "
                    f"report; the store is corrupt"
                )
            if payload.get("checkpoint") is not None:
                _write_checkpoint_payload(
                    cell.checkpoint, payload["checkpoint"]
                )
            cell.store_hits += 1
        else:
            probe = replace(
                cell.config, adaptive=opt.adaptive_budget(cap)
            )
            engine = SweepEngine(probe)
            results = engine.run(
                benchmark_def,
                workers=self._workers,
                checkpoint=cell.checkpoint,
                executor=self._executor,
                adaptive_cap_resumable=True,
            )
            report = engine.last_adaptive_report
            assert report is not None
            stats = engine.last_run_stats
            cell.evaluated_dies += (
                stats.evaluated_dies if stats is not None else 0
            )
            if self._store is not None:
                with open(cell.checkpoint, "r", encoding="utf-8") as handle:
                    checkpoint_payload = json.load(handle)
                self._store.put_record(
                    rung_key,
                    "dse-rung",
                    {
                        "results": quality_results_to_payload(
                            results, report
                        ),
                        "checkpoint": checkpoint_payload,
                    },
                    meta={
                        "benchmark": cell.benchmark_name,
                        "vdd": cell.point.vdd,
                        "p_cell": cell.point.p_cell,
                        "rung": rung,
                        "cap": cap,
                        "total_dies": report.total_dies,
                        "evaluated_dies": (
                            stats.evaluated_dies if stats is not None else 0
                        ),
                        "evaluation": "dse-rung",
                    },
                )
        cell.results = results
        cell.report = report
        cell.dies = report.total_dies
        cell.last_rung = rung
        yield_target = self._spec.quality_yield_target
        for name in cell.scheme_names:
            state = cell.rows[name]
            dist = results[name]
            half_width = float(report.half_widths[name])
            state.half_width = half_width
            # The yield estimate's CI maps to a quality band through the
            # (monotone) ECDF quantile: if the true yield at the threshold
            # is within +/- h of the estimate, the quality at the requested
            # yield target lies between these two quantiles.
            state.quality_lo = float(
                dist.ecdf.quantile(max(0.0, (1.0 - yield_target) - half_width))
            )
            state.quality_hi = float(
                dist.ecdf.quantile(min(1.0, (1.0 - yield_target) + half_width))
            )

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #
    def _prune_pass(
        self, cells: List[_CellState], rung: int
    ) -> List[PruneEvent]:
        """Drop every row provably dominated at the current bands.

        A row is pruned only when a dominating row has lower-or-equal energy
        *and* its quality band floor strictly clears the victim's band
        ceiling by ``frontier_slack`` -- overlapping or tied bands never
        prune.  Dominators are drawn from a snapshot of the rows unpruned at
        the start of the pass; dominance is transitive, so pruning A by a B
        that this same pass also prunes is sound (B's dominator dominates A
        too), and the outcome does not depend on examination order.
        """
        slack = self._optimizer.frontier_slack
        events: List[PruneEvent] = []
        for benchmark_name in self._spec.benchmarks.names:
            snapshot = [
                (cell, name)
                for cell in cells
                if cell.benchmark_name == benchmark_name
                and cell.results is not None
                for name in cell.scheme_names
                if not cell.rows[name].pruned
            ]
            for cell, name in snapshot:
                victim = cell.rows[name]
                for other_cell, other_name in snapshot:
                    if other_cell is cell and other_name == name:
                        continue
                    dominator = other_cell.rows[other_name]
                    if (
                        dominator.energy <= victim.energy
                        and dominator.quality_lo > victim.quality_hi + slack
                    ):
                        victim.pruned = True
                        victim.pruned_by = (
                            f"{other_name}@{other_cell.point.vdd:g}V"
                        )
                        events.append(
                            PruneEvent(
                                rung=rung,
                                benchmark=benchmark_name,
                                scheme=name,
                                vdd=cell.point.vdd,
                                p_cell=cell.point.p_cell,
                                energy=victim.energy,
                                quality_hi=victim.quality_hi,
                                by_scheme=other_name,
                                by_vdd=other_cell.point.vdd,
                                by_quality_lo=dominator.quality_lo,
                                slack=slack,
                            )
                        )
                        break
        return events

    def _update_status(self, cells: List[_CellState], rung: int) -> None:
        """Retire / resolve / exhaust cells after a pruning pass."""
        target_ci = self._optimizer.target_ci
        last_rung = self._optimizer.rungs - 1
        for cell in cells:
            if cell.status != "active":
                continue
            unpruned = [
                name
                for name in cell.scheme_names
                if not cell.rows[name].pruned
            ]
            if not unpruned:
                cell.status = "retired"
            elif all(
                cell.rows[name].half_width <= target_ci for name in unpruned
            ):
                cell.status = "resolved"
            elif rung == last_rung:
                cell.status = "exhausted"

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> OptimizeResult:
        """Race the grid through the rung schedule; return the audit table."""
        opt = self._optimizer
        with tempfile.TemporaryDirectory(prefix="repro-optimize-") as scratch:
            checkpoint_dir = self._checkpoint_dir or scratch
            os.makedirs(checkpoint_dir, exist_ok=True)
            cells, join = self._build_cells(checkpoint_dir)
            order = self._rung0_order(cells)
            prune_log: List[PruneEvent] = []
            for rung in range(opt.rungs):
                probe_cells = (
                    [cells[index] for index in order] if rung == 0 else cells
                )
                for cell in probe_cells:
                    if cell.status != "active":
                        continue
                    self._run_rung(
                        cell,
                        rung,
                        cell.caps[rung],
                        join["benchmark_defs"][cell.benchmark_name],
                    )
                prune_log.extend(self._prune_pass(cells, rung))
                self._update_status(cells, rung)
                if all(cell.status != "active" for cell in cells):
                    break
        return self._assemble(cells, order, prune_log, join)

    def _assemble(
        self,
        cells: List[_CellState],
        order: List[int],
        prune_log: List[PruneEvent],
        join: Mapping[str, object],
    ) -> OptimizeResult:
        """Fold the cell states into the final audit table (canonical order)."""
        spec = self._spec
        yield_target = spec.quality_yield_target
        overheads = join["overheads"]
        scaling = join["scaling"]
        nominal_vdd = join["nominal_vdd"]
        rows: List[Dict[str, object]] = []
        reports: Dict[Tuple[str, float, float], AdaptiveBudgetReport] = {}
        statuses: List[Dict[str, object]] = []
        for cell in cells:
            assert cell.results is not None and cell.report is not None
            reports[cell.key] = cell.report
            statuses.append(
                {
                    "benchmark": cell.benchmark_name,
                    "vdd": cell.point.vdd,
                    "p_cell": cell.point.p_cell,
                    "status": cell.status,
                    "dies": cell.dies,
                    "evaluated_dies": cell.evaluated_dies,
                    "store_hits": cell.store_hits,
                    "last_rung": cell.last_rung,
                }
            )
            logic_scale = (cell.point.vdd / nominal_vdd) ** 2
            word_read_energy = scaling.read_energy_fj(cell.point.vdd)
            for name in cell.scheme_names:
                state = cell.rows[name]
                row = build_dse_row(
                    benchmark_name=cell.benchmark_name,
                    scheme_name=name,
                    point=cell.point,
                    dist=cell.results[name],
                    overhead=overheads[name],
                    word_read_energy=word_read_energy,
                    logic_scale=logic_scale,
                    yield_target=yield_target,
                )
                row["quality_lo"] = state.quality_lo
                row["quality_hi"] = state.quality_hi
                row["ci_half_width"] = state.half_width
                row["dies"] = cell.dies
                row["rung"] = cell.last_rung
                row["pruned"] = state.pruned
                row["pruned_by"] = state.pruned_by
                rows.append(row)
        return OptimizeResult(
            spec,
            rows,
            prune_log,
            adaptive_reports=reports,
            surrogate_order=[cells[index].key for index in order],
            cell_statuses=statuses,
            total_dies=sum(cell.dies for cell in cells),
            evaluated_dies=sum(cell.evaluated_dies for cell in cells),
            exhaustive_dies=sum(cell.exhaustive_dies for cell in cells),
            store_hits=sum(cell.store_hits for cell in cells),
        )
