"""Layered, serialisable description of a design-space sweep.

:class:`~repro.sim.engine.ExperimentConfig` freezes *one* Monte-Carlo sweep:
a single memory geometry at a single operating point against one scheme set.
The paper's closing trade-off -- energy versus quality versus overhead at
scaled voltages -- is a *grid* of such sweeps, and :class:`ExperimentSpec`
describes that grid declaratively, one layer per axis:

* :class:`GeometrySpec` -- the memory under study (rows, word width, stored
  fixed-point format);
* :class:`OperatingGridSpec` -- the supply-voltage / ``Pcell`` grid and the
  energy model constants (which Pcell model by registry name, nominal VDD,
  leakage);
* :class:`SchemeGridSpec` -- the protection schemes by registry spec,
  including nFM / coverage variants, plus the FM-LUT realisation the
  overhead join uses;
* :class:`McBudgetSpec` -- the Monte-Carlo budget and the master seed of the
  deterministic per-die seeding scheme;
* :class:`BenchmarkGridSpec` -- the Table 1 benchmarks by registry name.

A spec round-trips through plain JSON (:meth:`ExperimentSpec.to_json` /
:meth:`ExperimentSpec.from_file`), expands into the cross product of
per-grid-point :class:`ExperimentConfig` objects, and is what ``repro dse
run --spec grid.json`` consumes.  Unknown keys fail loudly -- a typo in a
spec file must not silently run a default sweep.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.dse.registry import REGISTRY
from repro.faultmodel.pcell import PcellModel
from repro.hardware.energy import OperatingPoint, VoltageScalingModel
from repro.memory.organization import MemoryOrganization
from repro.scenarios.base import FaultScenario, ScenarioSpec
from repro.sim.engine import AdaptiveBudget, ExperimentConfig

__all__ = [
    "BenchmarkGridSpec",
    "ExperimentSpec",
    "GeometrySpec",
    "McBudgetSpec",
    "OperatingGridSpec",
    "OptimizerSpec",
    "SchemeGridSpec",
]


def _from_checked_dict(cls, data: Mapping[str, object], context: str):
    """Build a spec dataclass from a mapping, rejecting unknown keys."""
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {context} keys {unknown}; expected a subset of "
            f"{sorted(known)}"
        )
    return cls(**data)


@dataclass(frozen=True)
class GeometrySpec:
    """Memory geometry layer: what the sweep stores its data in."""

    rows: int
    word_width: int = 32
    frac_bits: int = 16

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("rows must be positive")
        if self.word_width < 1:
            raise ValueError("word_width must be positive")
        if not 0 <= self.frac_bits <= self.word_width:
            raise ValueError("frac_bits must be in [0, word_width]")

    @property
    def organization(self) -> MemoryOrganization:
        """The memory organization under study."""
        return MemoryOrganization(rows=self.rows, word_width=self.word_width)


@dataclass(frozen=True)
class OperatingGridSpec:
    """Operating-point layer: the VDD / Pcell grid and energy constants.

    Grid points are given either as supply voltages (``vdd_values``, mapped
    to ``Pcell`` through the named Pcell model) or as failure probabilities
    (``p_cell_values``, mapped back to a voltage through the model's
    inverse) -- or both; the grid is the concatenation in the given order.
    ``pcell_params`` parameterises the model factory (e.g. the ``gaussian``
    model's ``v_crit_mean`` / ``v_crit_sigma``) as a tuple of ``(name,
    value)`` pairs so the spec stays hashable.
    """

    vdd_values: Tuple[float, ...] = ()
    p_cell_values: Tuple[float, ...] = ()
    pcell_model: str = "calibrated-28nm"
    pcell_params: Tuple[Tuple[str, float], ...] = ()
    nominal_vdd: float = 1.0
    leakage_per_cell_nw: float = 0.015

    def __post_init__(self) -> None:
        object.__setattr__(self, "vdd_values", tuple(self.vdd_values))
        object.__setattr__(self, "p_cell_values", tuple(self.p_cell_values))
        object.__setattr__(
            self,
            "pcell_params",
            tuple((str(k), float(v)) for k, v in self.pcell_params),
        )
        if not self.vdd_values and not self.p_cell_values:
            raise ValueError(
                "the operating grid needs at least one vdd or p_cell value"
            )
        if any(v <= 0 for v in self.vdd_values):
            raise ValueError("vdd_values must be positive")
        if any(not 0.0 < p < 1.0 for p in self.p_cell_values):
            raise ValueError("p_cell_values must be in (0, 1)")

    def model(self) -> PcellModel:
        """The named ``Pcell(VDD)`` model of this grid."""
        return REGISTRY.build(
            "pcell-model", self.pcell_model, **dict(self.pcell_params)
        )

    def scaling_model(self, organization: MemoryOrganization) -> VoltageScalingModel:
        """The energy model joining voltages to access energy and leakage."""
        return VoltageScalingModel(
            organization,
            pcell_model=self.model(),
            nominal_vdd=self.nominal_vdd,
            leakage_per_cell_nw=self.leakage_per_cell_nw,
        )

    def operating_points(
        self, organization: MemoryOrganization
    ) -> List[OperatingPoint]:
        """Expand the grid into fully characterised operating points.

        Voltage entries take the model's ``Pcell`` at that voltage; ``Pcell``
        entries keep the *requested* probability exactly (the sweep must run
        at the spec's operating point, not at the round-tripped inverse) and
        carry the voltage the model maps it back to.
        """
        scaling = self.scaling_model(organization)
        model = scaling.pcell_model
        points = [scaling.operating_point(float(v)) for v in self.vdd_values]
        for p_cell in self.p_cell_values:
            vdd = model.vdd_for_p_cell(float(p_cell))
            point = scaling.operating_point(vdd)
            points.append(
                replace(
                    point,
                    p_cell=float(p_cell),
                    expected_failures=float(p_cell) * organization.total_cells,
                )
            )
        return points


@dataclass(frozen=True)
class SchemeGridSpec:
    """Protection-scheme layer: which mitigation options compete."""

    specs: Tuple[str, ...]
    lut_realisation: str = "column"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if not self.specs:
            raise ValueError("at least one scheme spec is required")
        if self.lut_realisation not in ("column", "register"):
            raise ValueError("lut_realisation must be 'column' or 'register'")


@dataclass(frozen=True)
class McBudgetSpec:
    """Monte-Carlo layer: sampling budget and the deterministic master seed.

    ``mode="fixed"`` (the default) evaluates exactly ``samples_per_count``
    dies per failure count -- bit-identical to every historical sweep.
    ``mode="adaptive"`` switches every grid point to the engine's
    confidence-driven budget: rounds of Neyman-allocated batches that stop
    once the yield-at-threshold confidence half-width reaches ``target_ci``
    or ``max_samples`` dies have been spent (``None`` caps at the equivalent
    fixed budget, so adaptive never costs more than fixed).  The remaining
    adaptive knobs (``confidence``, ``threshold``, ``initial_samples_per_
    count``, ``round_dies``) mirror
    :class:`~repro.sim.engine.AdaptiveBudget` and are ignored -- rejected,
    for ``target_ci`` -- in fixed mode, so a spec cannot silently carry a
    half-configured budget.
    """

    samples_per_count: int = 10
    n_count_points: Optional[int] = None
    coverage: float = 0.99
    master_seed: int = 2015
    discard_multi_fault_words: bool = True
    mode: str = "fixed"
    target_ci: Optional[float] = None
    confidence: float = 0.95
    threshold: Optional[float] = None
    initial_samples_per_count: int = 8
    round_dies: int = 64
    max_samples: Optional[int] = None

    def __post_init__(self) -> None:
        if self.samples_per_count < 1:
            raise ValueError("samples_per_count must be positive")
        if not 0.0 < self.coverage < 1.0:
            raise ValueError("coverage must be in (0, 1)")
        if self.mode not in ("fixed", "adaptive"):
            raise ValueError(
                f"budget mode must be 'fixed' or 'adaptive', got {self.mode!r}"
            )
        if self.mode == "fixed" and self.target_ci is not None:
            raise ValueError(
                "target_ci requires mode='adaptive' (a fixed budget has no "
                "stopping rule to apply it to)"
            )
        # Adaptive parameter validation is delegated to AdaptiveBudget so
        # spec files and engine configs can never disagree about validity.
        self.adaptive_budget()

    def adaptive_budget(self) -> Optional["AdaptiveBudget"]:
        """The engine-level adaptive budget (``None`` in fixed mode)."""
        if self.mode != "adaptive":
            return None
        kwargs = {
            "confidence": self.confidence,
            "threshold": self.threshold,
            "initial_samples_per_count": self.initial_samples_per_count,
            "round_dies": self.round_dies,
            "max_total_samples": self.max_samples,
        }
        if self.target_ci is not None:
            kwargs["target_ci"] = self.target_ci
        return AdaptiveBudget(**kwargs)


@dataclass(frozen=True)
class OptimizerSpec:
    """Budgeted-optimizer layer: the successive-halving schedule and the
    pruning rule of ``repro.dse.optimize``.

    Each surviving grid cell gets an adaptive-budget probe capped at
    ``rung0_dies`` dies in rung 0; survivors of each pruning pass carry their
    round state into the next rung, whose cap grows by ``eta``.  Rows are
    pruned only on *strict* CI-band separation plus ``frontier_slack`` --
    ties (including the sketch-quantisation ties of near-saturated
    qualities) never prune, which is what preserves frontier recall.  The
    adaptive knobs (``target_ci`` .. ``sketch_bins``) parameterise the inner
    :class:`~repro.sim.engine.AdaptiveBudget` probes and are validated by
    constructing one, so a spec file and the engine can never disagree.
    """

    rungs: int = 3
    eta: float = 2.0
    rung0_dies: Optional[int] = None
    frontier_slack: float = 0.0
    target_ci: float = 0.02
    confidence: float = 0.95
    threshold: Optional[float] = None
    initial_samples_per_count: int = 2
    round_dies: int = 32
    sketch_bins: int = 512
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.rungs < 1:
            raise ValueError("rungs must be at least 1")
        if not self.eta > 1.0:
            raise ValueError("eta must be greater than 1")
        if self.rung0_dies is not None and self.rung0_dies < 2:
            raise ValueError("rung0_dies must be at least 2")
        if self.frontier_slack < 0.0:
            raise ValueError("frontier_slack must be non-negative")
        # Delegate the adaptive-knob validation to AdaptiveBudget (with a
        # placeholder cap) so optimizer specs can never carry parameters the
        # engine would reject mid-run.
        self.adaptive_budget(max_total_samples=2)

    def adaptive_budget(self, max_total_samples: int) -> "AdaptiveBudget":
        """The inner adaptive probe budget, capped at ``max_total_samples``."""
        return AdaptiveBudget(
            target_ci=self.target_ci,
            confidence=self.confidence,
            threshold=self.threshold,
            initial_samples_per_count=self.initial_samples_per_count,
            round_dies=self.round_dies,
            max_total_samples=max_total_samples,
            sketch_bins=self.sketch_bins,
        )

    def rung_caps(self, base_dies: int) -> List[int]:
        """Per-cell cumulative die caps of every rung (geometric in ``eta``)."""
        return [
            int(math.ceil(base_dies * self.eta**rung))
            for rung in range(self.rungs)
        ]


@dataclass(frozen=True)
class BenchmarkGridSpec:
    """Application layer: which Table 1 benchmarks feel the corruption."""

    names: Tuple[str, ...] = ("knn",)
    scale: float = 0.5
    seed: int = 17

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        if not self.names:
            raise ValueError("at least one benchmark is required")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative cross-layer design-space sweep (the DSE input).

    The ``scenario`` layer names the fault-generation pipeline (see
    :mod:`repro.scenarios`) every grid point's dies are drawn through; a spec
    without a ``scenario`` section runs the default ``iid-pcell`` pipeline,
    which is bit-identical to the pre-scenario sweeps.  ``access_trace``
    sets the read passes replayed per load for scenarios with a transient
    tier; the default single pass leaves non-transient specs -- and their
    grid points' hashes -- untouched.
    """

    geometry: GeometrySpec
    operating_grid: OperatingGridSpec
    scheme_grid: SchemeGridSpec
    budget: McBudgetSpec = McBudgetSpec()
    benchmarks: BenchmarkGridSpec = BenchmarkGridSpec()
    quality_yield_target: float = 0.99
    scenario: ScenarioSpec = ScenarioSpec()
    access_trace: int = 1
    optimizer: Optional[OptimizerSpec] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quality_yield_target < 1.0:
            raise ValueError("quality_yield_target must be in (0, 1)")
        if self.optimizer is not None:
            if not isinstance(self.optimizer, OptimizerSpec):
                raise ValueError(
                    f"optimizer must be an OptimizerSpec, got "
                    f"{type(self.optimizer).__name__}"
                )
            if self.budget.mode != "fixed":
                raise ValueError(
                    "an optimizer section requires budget mode 'fixed': the "
                    "rung schedule supplies the adaptive probes, and the "
                    "fixed budget defines the exhaustive baseline the "
                    "optimizer is measured against"
                )
        if self.scenario is None:
            object.__setattr__(self, "scenario", ScenarioSpec())
        if not isinstance(self.scenario, ScenarioSpec):
            raise ValueError(
                f"scenario must be a ScenarioSpec, got "
                f"{type(self.scenario).__name__}"
            )
        if not isinstance(self.access_trace, int) or isinstance(
            self.access_trace, bool
        ):
            raise ValueError(
                f"access_trace must be an integer, got {self.access_trace!r}"
            )
        if self.access_trace < 1:
            raise ValueError(
                f"access_trace must be >= 1, got {self.access_trace}"
            )
        if self.access_trace != 1 and self.scenario.build().transient is None:
            # Same load-time rule the engine enforces per grid point: fail
            # when the spec is assembled, not halfway through a sweep.
            raise ValueError(
                "access_trace > 1 requires a scenario with a transient tier "
                "(e.g. 'transient'); static faults do not change between "
                "read passes"
            )

    def build_scenario(self) -> FaultScenario:
        """Resolve the scenario layer into a live pipeline.

        Delegates to :meth:`ScenarioSpec.build`, which resolves through
        :data:`repro.dse.registry.REGISTRY` (kind ``"scenario"``) -- the same
        lookup the sweep engine performs, so custom scenarios registered
        there are reachable from spec files by name end-to-end.
        """
        return self.scenario.build()

    # ------------------------------------------------------------------ #
    # Grid expansion
    # ------------------------------------------------------------------ #
    @property
    def organization(self) -> MemoryOrganization:
        """The memory organization under study."""
        return self.geometry.organization

    def operating_points(self) -> List[OperatingPoint]:
        """The operating-point axis, fully characterised."""
        return self.operating_grid.operating_points(self.organization)

    def grid_size(self) -> int:
        """Number of (operating point, benchmark, scheme) grid cells."""
        n_points = len(self.operating_grid.vdd_values) + len(
            self.operating_grid.p_cell_values
        )
        return n_points * len(self.benchmarks.names) * len(self.scheme_grid.specs)

    def experiment_config(
        self, point: OperatingPoint, benchmark_name: str
    ) -> ExperimentConfig:
        """The engine configuration of one (operating point, benchmark) cell."""
        return ExperimentConfig(
            rows=self.geometry.rows,
            word_width=self.geometry.word_width,
            p_cell=point.p_cell,
            coverage=self.budget.coverage,
            samples_per_count=self.budget.samples_per_count,
            n_count_points=self.budget.n_count_points,
            master_seed=self.budget.master_seed,
            scheme_specs=self.scheme_grid.specs,
            discard_multi_fault_words=self.budget.discard_multi_fault_words,
            frac_bits=self.geometry.frac_bits,
            benchmark=benchmark_name,
            # ExperimentConfig normalises the default scenario to None, so
            # default-spec grid points hash exactly as before the scenario
            # layer existed.
            scenario=self.scenario,
            # None in fixed mode, so fixed-budget grid points keep their
            # historical checkpoint hashes; an adaptive budget keys them.
            adaptive=self.budget.adaptive_budget(),
            access_trace=self.access_trace,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (lists instead of tuples)."""
        data = asdict(self)
        data["operating_grid"]["vdd_values"] = list(
            self.operating_grid.vdd_values
        )
        data["operating_grid"]["p_cell_values"] = list(
            self.operating_grid.p_cell_values
        )
        data["operating_grid"]["pcell_params"] = {
            k: v for k, v in self.operating_grid.pcell_params
        }
        data["scheme_grid"]["specs"] = list(self.scheme_grid.specs)
        data["benchmarks"]["names"] = list(self.benchmarks.names)
        data["scenario"] = self.scenario.to_dict()
        if self.access_trace == 1:
            # Keep default-spec JSON byte-identical to the pre-transient
            # format (and round-trippable by older readers).
            del data["access_trace"]
        if self.optimizer is None:
            # Same only-when-present rule: specs without a budgeted-optimizer
            # section keep their historical JSON byte-for-byte.
            del data["optimizer"]
        return data

    def to_json(self, indent: int = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the spec as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentSpec":
        """Build a spec from a plain mapping, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ExperimentSpec keys {unknown}; expected a subset "
                f"of {sorted(known)}"
            )
        if "geometry" not in data:
            raise ValueError("ExperimentSpec requires a 'geometry' section")
        if "operating_grid" not in data:
            raise ValueError("ExperimentSpec requires an 'operating_grid' section")
        if "scheme_grid" not in data:
            raise ValueError("ExperimentSpec requires a 'scheme_grid' section")
        operating = dict(data["operating_grid"])
        if isinstance(operating.get("pcell_params"), Mapping):
            operating["pcell_params"] = tuple(
                sorted(operating["pcell_params"].items())
            )
        kwargs: Dict[str, object] = {
            "geometry": _from_checked_dict(
                GeometrySpec, data["geometry"], "geometry"
            ),
            "operating_grid": _from_checked_dict(
                OperatingGridSpec, operating, "operating_grid"
            ),
            "scheme_grid": _from_checked_dict(
                SchemeGridSpec, data["scheme_grid"], "scheme_grid"
            ),
        }
        if "budget" in data:
            kwargs["budget"] = _from_checked_dict(
                McBudgetSpec, data["budget"], "budget"
            )
        if "benchmarks" in data:
            kwargs["benchmarks"] = _from_checked_dict(
                BenchmarkGridSpec, data["benchmarks"], "benchmarks"
            )
        if "quality_yield_target" in data:
            kwargs["quality_yield_target"] = data["quality_yield_target"]
        if "access_trace" in data:
            kwargs["access_trace"] = data["access_trace"]
        if "optimizer" in data and data["optimizer"] is not None:
            kwargs["optimizer"] = _from_checked_dict(
                OptimizerSpec, data["optimizer"], "optimizer"
            )
        if "scenario" in data:
            scenario = ScenarioSpec.from_dict(data["scenario"])
            # Resolve through the registry now: an unknown scenario name or
            # invalid parameter set must fail at load time, not halfway
            # through a sweep.
            try:
                REGISTRY.build(
                    "scenario", scenario.name, **dict(scenario.params)
                )
            except (TypeError, ValueError) as error:
                # TypeError covers custom-registered factories called with a
                # bad parameter set; both must surface as the documented
                # load-time failure.
                raise ValueError(f"invalid scenario section: {error}") from error
            kwargs["scenario"] = scenario
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
