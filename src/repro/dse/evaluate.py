"""Grid-point evaluators: one sweep of the design space, any scoring mode.

Every figure of the paper is one *slice* of the design space: Fig. 7 scores a
grid point by retraining a benchmark on corrupted features, Fig. 5 scores it
analytically by local MSE, and Fig. 6 is the operating-point-independent
hardware overhead join.  The functions here are those three evaluations with
one shared surface, so ``figure5_mse_cdf`` / ``figure7_quality`` /
``figure6_overhead``, ``YieldAnalyzer.compare_schemes``, and the
:class:`~repro.dse.explore.DesignSpaceExplorer` all run through the same
:class:`~repro.sim.engine.SweepEngine` machinery (sharded parallelism,
deterministic per-die seeding, checkpoint/resume).

Two sampling modes are supported everywhere:

* ``"seeded"`` -- the engine's native per-die seed-sequence sampling,
  bit-identical for any worker count and the only mode the DSE grid uses;
* ``"legacy"`` -- fault maps pre-drawn serially from a caller-supplied shared
  generator, reproducing the exact random streams (and golden regression
  curves) of the original serial Fig. 5 / Fig. 7 implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import ProtectionScheme
from repro.faultmodel.montecarlo import FaultMapSampler
from repro.faultmodel.yieldmodel import MseDistribution
from repro.hardware.overhead import OverheadModel, OverheadReport
from repro.hardware.technology import Technology
from repro.memory.faults import FaultMap
from repro.memory.organization import MemoryOrganization
from repro.quantize.fixedpoint import FixedPointFormat
from repro.sim.engine import (
    AdaptiveBudgetReport,
    ExperimentConfig,
    QualityDistribution,
    SweepEngine,
    SweepRunStats,
)
from repro.sim.experiment import BenchmarkDefinition

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.store.store import ResultStore

__all__ = [
    "evaluate_mse_point",
    "evaluate_overhead_point",
    "evaluate_quality_point",
    "legacy_fault_maps",
]

_SAMPLING_MODES = ("seeded", "legacy")


def legacy_fault_maps(
    config: ExperimentConfig,
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> Dict[Tuple[int, int], FaultMap]:
    """Pre-draw every die of ``config`` from a shared legacy generator stream.

    Dies are drawn one at a time in the canonical count-major order, each with
    the per-map rejection stream of the original serial implementations --
    exactly the sequence the pinned Fig. 5 and Fig. 7 golden curves were
    produced with.  The result plugs into ``SweepEngine.run(...,
    fault_maps=...)``.

    A non-default ``config.scenario`` routes every draw through the same
    fault-scenario pipeline the seeded engine sampling uses (the shared
    generator then feeds the pipeline serially); the default i.i.d. scenario
    keeps the exact historical stream.
    """
    sampler = FaultMapSampler(
        config.organization,
        rng,
        scenario=None if config.scenario is None else config.build_scenario(),
    )
    max_per_word = 1 if config.discard_multi_fault_words else None
    fault_maps: Dict[Tuple[int, int], FaultMap] = {}
    for count_index, count in enumerate(config.evaluated_counts()):
        if config.scenario is None:
            # The pinned golden curves depend on this exact per-map scalar
            # stream: one draw per die, in count-major order.
            batch = [
                sampler.sample_batch(
                    count,
                    1,
                    max_faults_per_word=max_per_word,
                    vectorized=False,
                    max_attempts=max_attempts,
                )[0]
                for _ in range(config.samples_per_count)
            ]
        else:
            # Scenario pipelines have no legacy stream to preserve, so the
            # whole stratum is drawn as one vectorized batch.
            batch = sampler.sample_batch(
                count,
                config.samples_per_count,
                max_faults_per_word=max_per_word,
                max_attempts=max_attempts,
            )
        for sample_index, fault_map in enumerate(batch):
            fault_maps[(count_index, sample_index)] = fault_map
    return fault_maps


def _resolve_fault_maps(
    config: ExperimentConfig,
    sampling: str,
    rng: Optional[np.random.Generator],
    fault_maps: Optional[Mapping[Tuple[int, int], FaultMap]],
) -> Optional[Mapping[Tuple[int, int], FaultMap]]:
    """The pre-drawn die population of one sweep (``None`` = seeded sampling)."""
    if sampling not in _SAMPLING_MODES:
        raise ValueError(
            f"unknown sampling mode {sampling!r}; expected one of "
            f"{', '.join(_SAMPLING_MODES)}"
        )
    if config.adaptive is not None and (
        sampling == "legacy" or fault_maps is not None
    ):
        raise ValueError(
            "adaptive budgets decide the die count as they run, so the "
            "population cannot be pre-drawn; use sampling='seeded' without "
            "fault_maps, or a fixed budget"
        )
    if fault_maps is not None:
        return fault_maps
    if sampling == "legacy":
        if rng is None:
            raise ValueError("legacy sampling requires a random generator")
        return legacy_fault_maps(config, rng)
    return None


def _record_adaptive_report(
    engine: SweepEngine, report_out: Optional[List["AdaptiveBudgetReport"]]
) -> None:
    """Append the engine's adaptive outcome to ``report_out`` (if any)."""
    if report_out is not None and engine.last_adaptive_report is not None:
        report_out.append(engine.last_adaptive_report)


def _record_run_stats(
    engine: SweepEngine, stats_out: Optional[List[SweepRunStats]]
) -> None:
    """Append the engine's run bookkeeping to ``stats_out`` (if any)."""
    if stats_out is not None and engine.last_run_stats is not None:
        stats_out.append(engine.last_run_stats)


def evaluate_quality_point(
    config: ExperimentConfig,
    benchmark: BenchmarkDefinition,
    *,
    schemes: Optional[Sequence[ProtectionScheme]] = None,
    sampling: str = "seeded",
    rng: Optional[np.random.Generator] = None,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    fault_maps: Optional[Mapping[Tuple[int, int], FaultMap]] = None,
    fixed_point: Optional[FixedPointFormat] = None,
    report_out: Optional[List["AdaptiveBudgetReport"]] = None,
    store: Optional["ResultStore"] = None,
    stats_out: Optional[List[SweepRunStats]] = None,
    executor: Optional[object] = None,
    adaptive_cap_resumable: bool = False,
) -> Dict[str, QualityDistribution]:
    """Application-quality distributions of one grid point (a Fig. 7 slice).

    ``schemes`` overrides ``config.scheme_specs`` with pre-built instances;
    ``fault_maps`` supplies an explicit pre-drawn die population (overriding
    ``sampling``); ``report_out`` collects the
    :class:`~repro.sim.engine.AdaptiveBudgetReport` of an adaptive-budget
    config; ``store`` serves exact configuration-hash hits and records
    computed sweeps; ``stats_out`` collects the run's
    :class:`~repro.sim.engine.SweepRunStats`; ``executor`` selects the shard
    executor tier (``None``/``"local"``, ``"inline"``, or an
    :class:`~repro.sim.executor.ExecutorSpec`); ``adaptive_cap_resumable``
    keys the checkpoint by the cap-free adaptive hash so a finished probe at
    one die cap seeds a later probe at a larger cap (the budgeted
    optimizer's successive-halving pattern -- requires an adaptive budget);
    everything else is delegated to :meth:`SweepEngine.run`.
    """
    engine = SweepEngine(config, schemes=schemes)
    results = engine.run(
        benchmark,
        workers=workers,
        checkpoint=checkpoint,
        fault_maps=_resolve_fault_maps(config, sampling, rng, fault_maps),
        fixed_point=fixed_point,
        store=store,
        executor=executor,
        adaptive_cap_resumable=adaptive_cap_resumable,
    )
    _record_adaptive_report(engine, report_out)
    _record_run_stats(engine, stats_out)
    return results


def evaluate_mse_point(
    config: ExperimentConfig,
    *,
    schemes: Optional[Sequence[ProtectionScheme]] = None,
    sampling: str = "seeded",
    rng: Optional[np.random.Generator] = None,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    fault_maps: Optional[Mapping[Tuple[int, int], FaultMap]] = None,
    fault_maps_by_count: Optional[Mapping[int, List[FaultMap]]] = None,
    include_fault_free: bool = True,
    report_out: Optional[List["AdaptiveBudgetReport"]] = None,
    store: Optional["ResultStore"] = None,
    stats_out: Optional[List[SweepRunStats]] = None,
    executor: Optional[object] = None,
) -> Dict[str, MseDistribution]:
    """Local-MSE distributions of one grid point (a Fig. 5 slice).

    ``fault_maps_by_count`` accepts the historical ``{failure_count: [maps]}``
    shape of :meth:`YieldAnalyzer.shared_fault_maps`; it is translated onto
    the engine's canonical ``(count_index, sample_index)`` keys.
    ``executor`` selects the shard executor tier as in
    :func:`evaluate_quality_point`.
    """
    if fault_maps_by_count is not None:
        if fault_maps is not None:
            raise ValueError(
                "pass either fault_maps or fault_maps_by_count, not both"
            )
        counts = config.evaluated_counts()
        fault_maps = {
            (count_index, sample_index): fault_map
            for count_index, count in enumerate(counts)
            for sample_index, fault_map in enumerate(fault_maps_by_count[count])
        }
    engine = SweepEngine(config, schemes=schemes)
    results = engine.run_mse(
        workers=workers,
        checkpoint=checkpoint,
        fault_maps=_resolve_fault_maps(config, sampling, rng, fault_maps),
        include_fault_free=include_fault_free,
        store=store,
        executor=executor,
    )
    _record_adaptive_report(engine, report_out)
    _record_run_stats(engine, stats_out)
    return results


def evaluate_overhead_point(
    organization: MemoryOrganization,
    technology: Optional[Technology] = None,
    n_fm_values: Optional[Sequence[int]] = None,
    lut_realisation: str = "column",
) -> OverheadReport:
    """Hardware read-path overhead of every scheme (the Fig. 6 join input)."""
    model = OverheadModel(organization, technology)
    return model.compare(
        n_fm_values=n_fm_values, lut_realisation=lut_realisation
    )
