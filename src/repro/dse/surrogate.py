"""Cheap deterministic quality surrogate for the budgeted optimizer.

The successive-halving optimizer (:mod:`repro.dse.optimize`) spends its
Monte-Carlo budget rung by rung; *which cell it probes first* never changes
the result (rung outcomes fold in canonical grid order), but it decides how
much audit state exists if a run is killed mid-rung and how early the prune
log starts filling in.  The surrogate orders rung 0 so the cells most likely
to hold frontier points are measured first -- their CI bands are then already
in place when the obviously-dominated cells come up for pruning.

The model is a closed-form ridge regression of ``quality_at_yield`` on
``log10(p_cell)`` and a per-scheme one-hot encoding, fit over warm rows from
two sources: tidy :class:`~repro.dse.explore.DseResult` tables and quality /
``dse-rung`` records of a :class:`~repro.store.ResultStore`.  Everything is
solved by a deterministic normal-equation solve -- no iterative fitting, no
randomness -- so the predicted ordering is a pure function of the training
rows.  With no training rows at all the surrogate falls back to an analytic
prior (the zero-fault probability of each cell), which preserves the "low
``p_cell`` is probably fine" ordering without any data.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.store.store import ResultStore

__all__ = [
    "QualitySurrogate",
    "rank_cells",
    "warm_rows_from_store",
]

_RIDGE_LAMBDA = 1e-6


def warm_rows_from_store(
    store: "ResultStore", yield_target: float
) -> List[Dict[str, object]]:
    """Training rows from every quality-bearing record of a result store.

    Both finished ``quality`` sweeps and partial ``dse-rung`` probes carry
    per-scheme distributions; each contributes one ``{scheme, p_cell,
    quality_at_yield}`` row.  Records are visited in deterministic key order.
    """
    from repro.store.schema import quality_results_from_payload

    rows: List[Dict[str, object]] = []
    summaries = sorted(
        store.query(kind="quality") + store.query(kind="dse-rung"),
        key=lambda entry: (entry["kind"], entry["key"]),
    )
    for summary in summaries:
        record = store.get_record(summary["key"], kind=summary["kind"])
        if record is None:  # pragma: no cover - raced gc
            continue
        payload = record["payload"]
        if summary["kind"] == "dse-rung":
            payload = payload["results"]
        for name, dist in quality_results_from_payload(payload).items():
            rows.append(
                {
                    "scheme": name,
                    "p_cell": float(dist.p_cell),
                    "quality_at_yield": float(
                        dist.quality_at_yield(yield_target)
                    ),
                }
            )
    return rows


class QualitySurrogate:
    """Ridge regression of quality-at-yield on operating point and scheme.

    ``fit`` accepts rows shaped like the tidy DSE table (only the
    ``scheme`` / ``p_cell`` / ``quality_at_yield`` columns are read); rows
    from other benchmarks or geometries are legitimate training data -- the
    surrogate only ranks, it never prunes, so a biased prediction costs
    ordering quality but never correctness.
    """

    def __init__(self) -> None:
        self._schemes: List[str] = []
        self._beta: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        """Whether any training rows were absorbed."""
        return self._beta is not None

    def _design_row(self, scheme: str, p_cell: float) -> np.ndarray:
        row = np.zeros(2 + len(self._schemes), dtype=np.float64)
        row[0] = 1.0
        row[1] = math.log10(p_cell)
        if scheme in self._schemes:
            row[2 + self._schemes.index(scheme)] = 1.0
        return row

    def fit(self, rows: Sequence[Mapping[str, object]]) -> "QualitySurrogate":
        """Fit the closed-form ridge model (no-op on an empty row set)."""
        usable = [
            row
            for row in rows
            if float(row["p_cell"]) > 0.0
        ]
        if not usable:
            return self
        self._schemes = sorted({str(row["scheme"]) for row in usable})
        design = np.stack(
            [
                self._design_row(str(row["scheme"]), float(row["p_cell"]))
                for row in usable
            ]
        )
        target = np.array(
            [float(row["quality_at_yield"]) for row in usable],
            dtype=np.float64,
        )
        gram = design.T @ design
        gram += _RIDGE_LAMBDA * np.eye(gram.shape[0])
        self._beta = np.linalg.solve(gram, design.T @ target)
        return self

    def predict(
        self,
        scheme: str,
        p_cell: float,
        zero_fault_probability: Optional[float] = None,
    ) -> float:
        """Predicted quality-at-yield of one (scheme, operating point) row.

        Falls back to the analytic prior -- ``Pr(N = 0)`` of the cell, or a
        log-``p_cell`` proxy when that is not supplied -- while unfitted.
        """
        if self._beta is None:
            if zero_fault_probability is not None:
                return float(zero_fault_probability)
            return -math.log10(max(p_cell, 1e-300))
        return float(self._design_row(scheme, p_cell) @ self._beta)


def rank_cells(cell_rows: Sequence[Sequence[Mapping[str, float]]]) -> List[int]:
    """Evaluation order of the rung-0 cells from predicted rows.

    ``cell_rows[i]`` holds cell ``i``'s predicted ``{"energy", "quality"}``
    rows.  Each row's *frontier margin* is its predicted quality minus the
    best predicted quality among strictly cheaper rows anywhere in the grid
    (the cheapest row of all has margin ``+inf`` -- it can never be
    dominated); a cell ranks by its best row's margin, descending, so
    predicted-frontier cells are probed first and the most obviously
    dominated cells are probed last (and die in the earliest prune pass that
    can see them).  Ties preserve canonical cell order, keeping the ranking
    fully deterministic.
    """
    all_rows = [
        (float(row["energy"]), float(row["quality"]))
        for rows in cell_rows
        for row in rows
    ]

    def margin(energy: float, quality: float) -> float:
        cheaper = [q for e, q in all_rows if e < energy]
        if not cheaper:
            return math.inf
        return quality - max(cheaper)

    scores = [
        max(
            (margin(float(row["energy"]), float(row["quality"])) for row in rows),
            default=-math.inf,
        )
        for rows in cell_rows
    ]
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
    return order
