"""Streaming, mergeable statistics core for the Monte-Carlo reduction path.

Every Monte-Carlo figure in this repository is a weighted reduction over
thousands of independent die evaluations.  Historically each worker shipped
its raw per-die scores back to the parent (an O(dies) payload) and the parent
materialised every score before building a CDF.  This package factors that
reduction into *mergeable streaming summaries* -- objects that absorb batches
of observations, merge with each other associatively, and finalise into the
statistics the figures need -- so a shard's result can be O(bins) instead of
O(dies), and a sweep can stop early once its confidence target is met.

Two summary families coexist:

* **Exact** (:class:`WeightedSampleBuffer`): keeps every observation.  This
  is the reduction behind :meth:`repro.quality.cdf.WeightedEcdf.from_groups`
  and the fixed-budget sweeps, whose pinned golden curves require bit-exact
  per-die values.  O(samples) memory, but mergeable and order-canonical.
* **Sketched** (:class:`StreamingMoments`, :class:`FixedGridEcdfSketch`,
  :class:`StratumVarianceTracker`): bounded-memory summaries used by the
  adaptive-budget sweeps, where shards return O(bins) payloads and the
  controller needs running variances per stratum.

Merging floats is associative only up to rounding, so reproducibility is a
*protocol*, not a property of the objects: callers must fold summaries in a
canonical order (the sweep engine merges per shard index, never per arrival
order).  Under that discipline results are bit-identical for any worker
count.
"""

from repro.stats.base import StreamingSummary
from repro.stats.buffer import WeightedSampleBuffer
from repro.stats.moments import MomentsResult, StreamingMoments
from repro.stats.sketch import FixedGridEcdfSketch
from repro.stats.strata import (
    StratumVarianceTracker,
    largest_remainder_allocation,
    normal_critical_value,
)

__all__ = [
    "FixedGridEcdfSketch",
    "MomentsResult",
    "StreamingMoments",
    "StratumVarianceTracker",
    "StreamingSummary",
    "WeightedSampleBuffer",
    "largest_remainder_allocation",
    "normal_critical_value",
]
