"""Mergeable running moments (Welford / Chan).

:class:`StreamingMoments` tracks count, mean, and the centred second moment
``M2`` of a stream of observations in O(1) memory, using Welford's update for
batches and Chan et al.'s parallel combination rule for merges.  The sample
variance it reports is the unbiased (Bessel-corrected) estimator the
adaptive-budget controller's confidence intervals are built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np

from repro.stats.base import as_float_array

__all__ = ["MomentsResult", "StreamingMoments"]


@dataclass(frozen=True)
class MomentsResult:
    """Finalised view of a :class:`StreamingMoments` accumulator."""

    count: int
    mean: float
    variance: float  # unbiased sample variance (0.0 when count < 2)
    std: float
    minimum: float  # +inf when empty
    maximum: float  # -inf when empty


class StreamingMoments:
    """Streaming mean / variance / extrema with exact-count merging."""

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # ------------------------------------------------------------------ #
    # StreamingSummary protocol
    # ------------------------------------------------------------------ #
    def update_batch(self, values: Any) -> None:
        """Absorb a batch of observations (vectorised Welford via Chan merge)."""
        values = as_float_array(values)
        if values.size == 0:
            return
        batch = StreamingMoments()
        batch.count = int(values.size)
        batch.mean = float(values.mean())
        batch.m2 = float(np.square(values - batch.mean).sum())
        batch.minimum = float(values.min())
        batch.maximum = float(values.max())
        self.merge(batch)

    def merge(self, other: "StreamingMoments") -> None:
        """Chan's parallel combination; exact for counts and extrema."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = (
            self.m2
            + other.m2
            + delta * delta * (self.count * other.count / total)
        )
        self.mean = self.mean + delta * (other.count / total)
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def finalize(self) -> MomentsResult:
        """Count, mean, unbiased variance, std, and extrema."""
        variance = self.variance()
        return MomentsResult(
            count=self.count,
            mean=self.mean,
            variance=variance,
            std=math.sqrt(variance),
            minimum=self.minimum,
            maximum=self.maximum,
        )

    # ------------------------------------------------------------------ #
    # Direct queries
    # ------------------------------------------------------------------ #
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        # Rounding in the merge chain can leave m2 a hair below zero for
        # constant streams; clamp so downstream sqrt never sees a negative.
        return max(self.m2, 0.0) / (self.count - 1)

    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance())

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe state (floats round-trip bit-for-bit)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": None if math.isinf(self.minimum) else self.minimum,
            "max": None if math.isinf(self.maximum) else self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamingMoments":
        """Rebuild a summary saved by :meth:`to_dict`."""
        summary = cls()
        summary.count = int(data["count"])
        summary.mean = float(data["mean"])
        summary.m2 = float(data["m2"])
        summary.minimum = math.inf if data["min"] is None else float(data["min"])
        summary.maximum = -math.inf if data["max"] is None else float(data["max"])
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean!r}, "
            f"m2={self.m2!r})"
        )
