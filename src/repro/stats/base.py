"""The mergeable streaming-summary protocol.

A :class:`StreamingSummary` absorbs observations in batches, merges with
other summaries of the same shape, and finalises into whatever statistic it
models.  The algebra every implementation must satisfy (and that
``tests/test_stats.py`` property-checks):

* ``update_batch`` over any partition of the observations is equivalent to
  one-shot construction (up to floating-point rounding);
* ``merge`` is associative and commutative up to floating-point rounding,
  and exact for the integer state (counts, bin tallies);
* ``merge`` with an empty summary is the identity;
* ``to_dict`` / ``from_dict`` round-trip the state exactly (JSON-safe), so
  summaries can live in checkpoints.

Bit-level reproducibility across worker counts is achieved by *canonical
fold order*, not by pretending float addition associates: the sweep engine
always folds shard summaries in shard-index order.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np

__all__ = ["StreamingSummary", "as_float_array"]


def as_float_array(values: Any) -> np.ndarray:
    """Flatten ``values`` to a 1-D float64 array (the common ingest step)."""
    return np.asarray(values, dtype=np.float64).ravel()


@runtime_checkable
class StreamingSummary(Protocol):
    """Protocol shared by every mergeable summary in :mod:`repro.stats`."""

    def update_batch(self, values: Any) -> None:
        """Absorb a batch of observations."""

    def merge(self, other: "StreamingSummary") -> None:
        """Fold ``other``'s state into this summary (in place)."""

    def finalize(self) -> Any:
        """The summarised statistic(s); does not mutate the summary."""

    def to_dict(self) -> Mapping[str, Any]:
        """JSON-serialisable state (for checkpoints)."""
