"""Per-stratum variance tracking for stratified Monte-Carlo estimators.

The sweeps estimate population statistics of the form

``theta = w_0 * v_0 + sum_n w_n * E[f(die) | N = n]``

where ``w_n = Pr(N = n)`` is the (fixed, known) probability of the stratum
and the conditional expectations are estimated by per-stratum sample means.
:class:`StratumVarianceTracker` keeps one :class:`StreamingMoments` per
stratum plus the stratum weights, merges stratum-wise (exactly the shape a
shard returns), and answers the two questions the adaptive budget controller
asks each round:

* the current confidence half-width of the stratified estimate,
  ``z * sqrt(sum_n w_n^2 * s_n^2 / m_n)``;
* the Neyman allocation of the next batch, which samples stratum ``n``
  proportionally to ``w_n * s_n`` (the variance-optimal split).
"""

from __future__ import annotations

import math
from statistics import NormalDist
from typing import Any, Dict, Mapping

from repro.stats.base import as_float_array
from repro.stats.moments import StreamingMoments

__all__ = [
    "StratumVarianceTracker",
    "largest_remainder_allocation",
    "normal_critical_value",
]


def normal_critical_value(confidence: float) -> float:
    """Two-sided normal critical value ``z`` for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def largest_remainder_allocation(
    scores: Mapping[int, float], batch: int
) -> Dict[int, int]:
    """Split ``batch`` integer units proportionally to ``scores``.

    Deterministic largest-remainder rounding: fractional remainders win
    first, ties broken by ascending key, so the same scores always produce
    the same allocation.  All-zero (or empty-positive) scores fall back to a
    uniform split -- the caller wants more evidence, not a crash.
    """
    if batch < 0:
        raise ValueError("batch must be non-negative")
    keys = sorted(scores)
    if not keys:
        raise ValueError("at least one stratum is required")
    values = [max(float(scores[key]), 0.0) for key in keys]
    total = sum(values)
    if total <= 0.0:
        values = [1.0] * len(keys)
        total = float(len(keys))
    shares = [batch * value / total for value in values]
    allocation = {key: int(share) for key, share in zip(keys, shares)}
    remainder = batch - sum(allocation.values())
    order = sorted(
        range(len(keys)),
        key=lambda i: (-(shares[i] - int(shares[i])), keys[i]),
    )
    for i in order[:remainder]:
        allocation[keys[i]] += 1
    return allocation


class StratumVarianceTracker:
    """Weighted per-stratum moments behind the stratified CI and allocation."""

    __slots__ = ("weights", "strata")

    def __init__(self, weights: Mapping[int, float]) -> None:
        if not weights:
            raise ValueError("at least one stratum weight is required")
        if any(w < 0 for w in weights.values()):
            raise ValueError("stratum weights must be non-negative")
        self.weights: Dict[int, float] = {
            int(k): float(v) for k, v in weights.items()
        }
        self.strata: Dict[int, StreamingMoments] = {
            key: StreamingMoments() for key in self.weights
        }

    # ------------------------------------------------------------------ #
    # StreamingSummary protocol (stratified flavour)
    # ------------------------------------------------------------------ #
    def update_batch(self, stratum: int, values: Any) -> None:
        """Absorb a batch of observations belonging to one stratum."""
        stratum = int(stratum)
        if stratum not in self.strata:
            raise KeyError(f"unknown stratum {stratum}")
        self.strata[stratum].update_batch(as_float_array(values))

    def merge(self, other: "StratumVarianceTracker") -> None:
        """Stratum-wise merge; the two trackers must share weights exactly."""
        if self.weights != other.weights:
            raise ValueError("cannot merge trackers with different strata")
        # Sorted fold order keeps the merge canonical no matter how the
        # other tracker's dict happens to be ordered.
        for key in sorted(self.strata):
            self.strata[key].merge(other.strata[key])

    def finalize(self) -> Dict[int, Any]:
        """Per-stratum :class:`MomentsResult` views, keyed by stratum."""
        return {key: self.strata[key].finalize() for key in sorted(self.strata)}

    # ------------------------------------------------------------------ #
    # Stratified estimator
    # ------------------------------------------------------------------ #
    def counts(self) -> Dict[int, int]:
        """Observations absorbed per stratum."""
        return {key: self.strata[key].count for key in sorted(self.strata)}

    def estimate(self, baseline: float = 0.0) -> float:
        """The stratified estimate ``baseline + sum_n w_n * mean_n``.

        ``baseline`` carries analytically known terms (the fault-free point
        mass of the sweeps).  Strata with no observations contribute zero.
        """
        total = baseline
        for key in sorted(self.strata):
            moments = self.strata[key]
            if moments.count:
                total += self.weights[key] * moments.mean
        return total

    def estimate_variance(self) -> float:
        """``Var(theta_hat) = sum_n w_n^2 * s_n^2 / m_n`` (sampled strata only).

        Strata with fewer than two observations have an undefined sample
        variance and contribute zero -- callers must seed every stratum with
        an initial batch of at least two before trusting the result.
        """
        total = 0.0
        for key in sorted(self.strata):
            moments = self.strata[key]
            if moments.count >= 2:
                weight = self.weights[key]
                total += weight * weight * moments.variance() / moments.count
        return total

    def half_width(self, confidence: float = 0.95) -> float:
        """Confidence half-width of the stratified estimate."""
        return normal_critical_value(confidence) * math.sqrt(
            self.estimate_variance()
        )

    def neyman_allocation(self, batch: int) -> Dict[int, int]:
        """Split ``batch`` new samples across strata proportionally to
        ``w_n * s_n`` (largest-remainder rounding, deterministic).

        Zero-variance strata receive nothing; if every stratum has zero
        observed variance the batch is spread uniformly (the caller only
        asks for an allocation when the CI target is unmet, which with an
        all-zero variance estimate means it simply wants more evidence).
        """
        return largest_remainder_allocation(
            {
                key: self.weights[key] * self.strata[key].std()
                for key in self.strata
            },
            batch,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe state (weights plus per-stratum moments)."""
        return {
            "weights": {str(k): self.weights[k] for k in sorted(self.weights)},
            "strata": {
                str(k): self.strata[k].to_dict() for k in sorted(self.strata)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StratumVarianceTracker":
        """Rebuild a tracker saved by :meth:`to_dict`."""
        tracker = cls({int(k): float(v) for k, v in data["weights"].items()})
        for key, moments in data["strata"].items():
            tracker.strata[int(key)] = StreamingMoments.from_dict(moments)
        return tracker
