"""Fixed-grid mergeable ECDF / quantile sketch.

:class:`FixedGridEcdfSketch` histograms weighted observations onto a fixed,
shared bin grid.  Because every shard of a sweep uses the *same* grid, merging
is exact bin-wise addition -- the sketch of the whole population equals the
merge of the shards' sketches regardless of how the dies were partitioned --
and the payload is O(bins) no matter how many dies a shard evaluated.

Bins are right-closed: bin ``i`` (``1 <= i <= B``) holds values in
``(edges[i-1], edges[i]]``, bin ``0`` holds values ``<= edges[0]``, and the
overflow bin holds values ``> edges[-1]``.  The CDF is therefore *exact at
every grid edge*; between edges it is a conservative step function.  Exact
minimum and maximum are tracked so the support of the finalised distribution
is honest at both tails.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.stats.base import as_float_array

__all__ = ["FixedGridEcdfSketch"]


class FixedGridEcdfSketch:
    """Weighted ECDF sketch over a fixed bin grid (mergeable, O(bins))."""

    __slots__ = ("edges", "counts", "count", "minimum", "maximum")

    def __init__(self, edges: Any) -> None:
        edges = as_float_array(edges)
        if edges.size < 2:
            raise ValueError("a sketch grid needs at least two edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("sketch edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.size + 1, dtype=np.float64)
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    # ------------------------------------------------------------------ #
    # Grid factories
    # ------------------------------------------------------------------ #
    @classmethod
    def linear(cls, low: float, high: float, bins: int) -> "FixedGridEcdfSketch":
        """Uniform grid of ``bins`` right-closed bins over ``[low, high]``."""
        if bins < 1:
            raise ValueError("bins must be positive")
        return cls(np.linspace(low, high, bins + 1))

    @classmethod
    def log10(cls, low: float, high: float, bins: int) -> "FixedGridEcdfSketch":
        """Log-spaced grid (decades) -- the natural grid for MSE magnitudes."""
        if low <= 0 or high <= low:
            raise ValueError("log grid needs 0 < low < high")
        if bins < 1:
            raise ValueError("bins must be positive")
        return cls(np.logspace(math.log10(low), math.log10(high), bins + 1))

    # ------------------------------------------------------------------ #
    # StreamingSummary protocol
    # ------------------------------------------------------------------ #
    def update_batch(self, values: Any, weights: Any = None) -> None:
        """Absorb observations; ``weights`` is a scalar or per-value array
        (default: unit weight per observation).

        Weights must be non-negative: negative mass would make bin totals --
        and every quantile built from them -- meaningless, so it is rejected
        here rather than surfacing later as a garbled CDF.  Zero weights are
        legal (the observation still advances :attr:`count` and the min/max
        tracking, but contributes no mass).
        """
        values = as_float_array(values)
        if values.size == 0:
            return
        indices = np.searchsorted(self.edges, values, side="left")
        if weights is None:
            np.add.at(self.counts, indices, 1.0)
        else:
            weights = np.broadcast_to(
                np.asarray(weights, dtype=np.float64), values.shape
            )
            if np.any(weights < 0):
                raise ValueError("sketch weights must be non-negative")
            np.add.at(self.counts, indices, weights)
        self.count += int(values.size)
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "FixedGridEcdfSketch") -> None:
        """Exact bin-wise addition; grids must match exactly."""
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge sketches with different grids")
        self.counts += other.counts
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(support, weights)`` of the sketched distribution.

        Occupied bins are reported at their upper edge -- except the
        underflow bin, reported at the exact observed minimum, and the
        overflow bin, reported at the exact observed maximum -- so the
        support never extends beyond the data.  Weights are the raw bin
        masses (not normalised).
        """
        support = np.concatenate(
            (
                [self.minimum if self.count else self.edges[0]],
                self.edges[1:],
                [self.maximum if self.count else self.edges[-1]],
            )
        )
        occupied = self.counts > 0
        return support[occupied], self.counts[occupied]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def total_weight(self) -> float:
        """Sum of all absorbed weights (the distribution's total mass).

        Distinct from :attr:`count`, which is the *number of observations*
        absorbed regardless of their weights: an ``update_batch`` of three
        zero-weight values leaves ``count == 3`` but ``total_weight == 0``.
        Mass-dependent queries (:meth:`quantile`,
        :meth:`probability_at_most`) operate on ``total_weight``;
        ``count`` answers "has this sketch seen any data at all".
        """
        return float(self.counts.sum())

    def probability_at_most(self, threshold: float) -> float:
        """``P(X <= threshold)`` -- exact when ``threshold`` is a grid edge,
        otherwise the mass of all bins entirely at or below it (a lower
        bound)."""
        total = self.total_weight
        if total <= 0:
            return 0.0
        idx = int(np.searchsorted(self.edges, threshold, side="right"))
        return float(self.counts[:idx].sum()) / total

    def quantile(self, q: float) -> float:
        """Smallest support point whose cumulative mass reaches ``q``.

        Raises
        ------
        ValueError
            If the sketch has absorbed no observations at all (empty
            sketch), or -- the weighted edge case -- if it has observations
            but their total mass is zero, in which case no quantile of the
            distribution is defined.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        support, weights = self.finalize()
        if support.size == 0:
            if self.count > 0:
                raise ValueError(
                    f"cannot take the quantile of a sketch with zero total "
                    f"mass ({self.count} observations, all with weight 0)"
                )
            raise ValueError("cannot take the quantile of an empty sketch")
        cumulative = np.cumsum(weights) / weights.sum()
        idx = min(
            int(np.searchsorted(cumulative, q, side="left")), support.size - 1
        )
        return float(support[idx])

    def payload_scalars(self) -> int:
        """Number of scalars this sketch ships when pickled (O(bins))."""
        return int(self.edges.size + self.counts.size) + 3

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe state; bins stored sparsely (index, mass)."""
        occupied = np.flatnonzero(self.counts)
        return {
            "edges": self.edges.tolist(),
            "bins": {int(i): float(self.counts[i]) for i in occupied},
            "count": self.count,
            "min": None if math.isinf(self.minimum) else self.minimum,
            "max": None if math.isinf(self.maximum) else self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FixedGridEcdfSketch":
        """Rebuild a sketch saved by :meth:`to_dict`."""
        sketch = cls(np.asarray(data["edges"], dtype=np.float64))
        for index, mass in data["bins"].items():
            sketch.counts[int(index)] = float(mass)
        sketch.count = int(data["count"])
        sketch.minimum = math.inf if data["min"] is None else float(data["min"])
        sketch.maximum = -math.inf if data["max"] is None else float(data["max"])
        return sketch

    def copy(self) -> "FixedGridEcdfSketch":
        """Independent deep copy (fresh count arrays)."""
        other = FixedGridEcdfSketch(self.edges)
        other.counts = self.counts.copy()
        other.count = self.count
        other.minimum = self.minimum
        other.maximum = self.maximum
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FixedGridEcdfSketch(bins={self.edges.size - 1}, "
            f"count={self.count}, total_weight={self.total_weight!r})"
        )
