"""Exact mergeable buffer of weighted observations.

:class:`WeightedSampleBuffer` is the *exact* member of the streaming-summary
family: it keeps every (value, weight) pair it absorbs, so finalising it
reproduces the historical concatenate-then-sort ECDF construction
bit-for-bit.  It exists so the fixed-budget reduction path -- whose pinned
golden curves forbid any sketching -- still speaks the same
``update_batch`` / ``merge`` / ``finalize`` algebra as the O(bins) sketches
used by adaptive sweeps.  Memory is O(samples); callers that need bounded
shard payloads use :class:`~repro.stats.sketch.FixedGridEcdfSketch` instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.stats.base import as_float_array

__all__ = ["WeightedSampleBuffer"]


class WeightedSampleBuffer:
    """Ordered, mergeable collection of weighted observation batches."""

    __slots__ = ("_values", "_weights")

    def __init__(self) -> None:
        self._values: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # StreamingSummary protocol
    # ------------------------------------------------------------------ #
    def update_batch(self, values: Any, weights: Any = None) -> None:
        """Append a batch; ``weights`` is a scalar (shared by the batch),
        a per-value array, or ``None`` for unit weights."""
        values = as_float_array(values)
        if values.size == 0:
            return
        if weights is None:
            weights = np.ones(values.shape, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.ndim == 0:
                weights = np.full(values.shape, float(weights))
            else:
                weights = weights.ravel()
                if weights.shape != values.shape:
                    raise ValueError(
                        "values and weights must have the same length"
                    )
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        self._values.append(values)
        self._weights.append(weights)

    def merge(self, other: "WeightedSampleBuffer") -> None:
        """Append ``other``'s batches after this buffer's (order-preserving).

        The finalised *distribution* is merge-order independent; the exact
        array layout follows the fold order, which is why callers fold in a
        canonical order when bit-identical layouts matter.
        """
        self._values.extend(other._values)
        self._weights.extend(other._weights)

    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, weights)`` concatenated in absorption order."""
        if not self._values:
            raise ValueError("no samples supplied")
        return np.concatenate(self._values), np.concatenate(self._weights)

    # ------------------------------------------------------------------ #
    # Introspection / serialisation
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(chunk.size for chunk in self._values)

    @property
    def is_empty(self) -> bool:
        """Whether no observations have been absorbed."""
        return not self._values

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe state (exact float round-trip)."""
        return {
            "values": [chunk.tolist() for chunk in self._values],
            "weights": [chunk.tolist() for chunk in self._weights],
        }

    @classmethod
    def from_dict(cls, data) -> "WeightedSampleBuffer":
        """Rebuild a buffer saved by :meth:`to_dict`."""
        buffer = cls()
        for values, weights in zip(data["values"], data["weights"]):
            buffer._values.append(np.asarray(values, dtype=np.float64))
            buffer._weights.append(np.asarray(weights, dtype=np.float64))
        return buffer
