"""Persistent per-die fault maps with stuck-at semantics.

Once a memory is manufactured, the number and location of variation-induced
bit-cell failures is persistent (Section 2 of the paper).  A
:class:`FaultMap` records exactly which cells of a die are faulty and how they
misbehave, and is the single source of truth consumed by

* the SRAM array model (to corrupt stored data),
* BIST (which rediscovers the faults at test time),
* the protection schemes (which program their FM-LUT from BIST results), and
* the analytical yield model (which only needs fault *positions*).

Two fault behaviours are modelled:

``STUCK_AT_ZERO`` / ``STUCK_AT_ONE``
    The cell always reads the stuck value regardless of what was written.
``BIT_FLIP``
    The cell returns the complement of the written value.  This is the
    conservative model used by the paper's Monte-Carlo fault injection
    ("random bit-flips were injected"), because a stuck-at fault only
    manifests for half of the stored values while a flip always does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.memory.organization import MemoryOrganization

__all__ = ["FaultKind", "FaultSite", "FaultMap"]


class FaultKind(str, Enum):
    """Behaviour of a faulty bit-cell."""

    STUCK_AT_ZERO = "stuck_at_zero"
    STUCK_AT_ONE = "stuck_at_one"
    BIT_FLIP = "bit_flip"


@dataclass(frozen=True)
class FaultSite:
    """A single faulty bit-cell: its row, bit position within the word, and kind."""

    row: int
    column: int
    kind: FaultKind = FaultKind.BIT_FLIP

    def __post_init__(self) -> None:
        if self.row < 0:
            raise ValueError(f"row must be non-negative, got {self.row}")
        if self.column < 0:
            raise ValueError(f"column must be non-negative, got {self.column}")


class FaultMap:
    """The set of faulty cells of one manufactured memory die.

    The map is immutable from the perspective of the memory model (faults are
    persistent); construction-time helpers generate random maps according to a
    cell-failure probability or an exact failure count, matching the paper's
    Monte-Carlo methodology.
    """

    def __init__(
        self,
        organization: MemoryOrganization,
        faults: Iterable[FaultSite] = (),
    ) -> None:
        self._organization = organization
        by_cell: Dict[Tuple[int, int], FaultSite] = {}
        for fault in faults:
            organization.check_row(fault.row)
            organization.check_column(fault.column)
            key = (fault.row, fault.column)
            if key in by_cell:
                raise ValueError(
                    f"duplicate fault at row {fault.row}, column {fault.column}"
                )
            by_cell[key] = fault
        self._faults = by_cell
        self._mask_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def organization(self) -> MemoryOrganization:
        """Geometry of the die this fault map describes."""
        return self._organization

    @property
    def fault_count(self) -> int:
        """Total number of faulty cells ``N`` in the die."""
        return len(self._faults)

    def __len__(self) -> int:
        return self.fault_count

    def __iter__(self) -> Iterator[FaultSite]:
        return iter(sorted(self._faults.values(), key=lambda f: (f.row, f.column)))

    def __contains__(self, cell: Tuple[int, int]) -> bool:
        return tuple(cell) in self._faults

    def fault_at(self, row: int, column: int) -> Optional[FaultSite]:
        """Return the fault at ``(row, column)`` or ``None`` if the cell is healthy."""
        return self._faults.get((row, column))

    def faults_in_row(self, row: int) -> List[FaultSite]:
        """All faults located in ``row``, sorted by bit position."""
        self._organization.check_row(row)
        return sorted(
            (f for (r, _c), f in self._faults.items() if r == row),
            key=lambda f: f.column,
        )

    def faulty_rows(self) -> List[int]:
        """Sorted list of rows containing at least one faulty cell."""
        return sorted({r for (r, _c) in self._faults})

    def faulty_columns_by_row(self) -> Dict[int, List[int]]:
        """Mapping row -> sorted faulty bit positions, for rows with faults only."""
        result: Dict[int, List[int]] = {}
        for (row, column) in self._faults:
            result.setdefault(row, []).append(column)
        for columns in result.values():
            columns.sort()
        return result

    def max_faults_per_row(self) -> int:
        """Largest number of faulty cells sharing a single row (0 if fault-free)."""
        by_row = self.faulty_columns_by_row()
        if not by_row:
            return 0
        return max(len(columns) for columns in by_row.values())

    def bit_positions(self) -> np.ndarray:
        """Bit positions (column indices) of all faults, one entry per fault.

        This is the only information the analytical MSE/yield model (Eq. 6)
        needs about a die.
        """
        return np.array(sorted(f.column for f in self._faults.values()), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Application of faults to data
    # ------------------------------------------------------------------ #
    def corrupt_word(self, row: int, pattern: int) -> int:
        """Return the pattern that a read of ``row`` would observe for stored ``pattern``.

        Applies each fault in the row according to its :class:`FaultKind`.
        """
        self._organization.check_row(row)
        width = self._organization.word_width
        if pattern < 0 or pattern >> width:
            raise ValueError(f"pattern does not fit in {width} bits")
        corrupted = pattern
        for fault in self.faults_in_row(row):
            bit = 1 << fault.column
            if fault.kind is FaultKind.STUCK_AT_ZERO:
                corrupted &= ~bit
            elif fault.kind is FaultKind.STUCK_AT_ONE:
                corrupted |= bit
            else:  # BIT_FLIP
                corrupted ^= bit
        return corrupted

    def flip_masks(self) -> np.ndarray:
        """Per-row XOR masks for ``BIT_FLIP`` faults (vectorised corruption).

        Only meaningful when every fault is a ``BIT_FLIP``; stuck-at faults are
        data-dependent and cannot be expressed as a fixed XOR mask.
        """
        masks = np.zeros(self._organization.rows, dtype=np.uint64)
        for fault in self._faults.values():
            if fault.kind is not FaultKind.BIT_FLIP:
                raise ValueError("flip_masks() requires a pure bit-flip fault map")
            masks[fault.row] |= np.uint64(1 << fault.column)
        return masks

    def corruption_masks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-row ``(and, or, xor)`` masks expressing every fault kind at once.

        A read of row ``r`` observes ``((pattern & and[r]) | or[r]) ^ xor[r]``:
        stuck-at-zero cells are cleared by the AND mask, stuck-at-one cells set
        by the OR mask, and bit-flip cells inverted by the XOR mask.  Each cell
        carries at most one fault, so the three masks never overlap and the
        composition is exact for any mix of fault kinds.
        """
        if self._mask_cache is None:
            rows = self._organization.rows
            word_mask = np.uint64((1 << self._organization.word_width) - 1)
            and_masks = np.full(rows, word_mask, dtype=np.uint64)
            or_masks = np.zeros(rows, dtype=np.uint64)
            xor_masks = np.zeros(rows, dtype=np.uint64)
            for fault in self._faults.values():
                bit = np.uint64(1 << fault.column)
                if fault.kind is FaultKind.STUCK_AT_ZERO:
                    and_masks[fault.row] &= ~bit
                elif fault.kind is FaultKind.STUCK_AT_ONE:
                    or_masks[fault.row] |= bit
                else:  # BIT_FLIP
                    xor_masks[fault.row] |= bit
            self._mask_cache = (and_masks, or_masks, xor_masks)
        return self._mask_cache

    def corrupt_words(self, rows: np.ndarray, patterns: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`corrupt_word` over parallel row/pattern arrays.

        ``rows`` selects the per-row fault masks for each pattern; the masks
        are built once per map and cached (faults are persistent).
        """
        rows = np.asarray(rows, dtype=np.int64)
        patterns = np.asarray(patterns, dtype=np.uint64)
        if rows.shape != patterns.shape:
            raise ValueError("rows and patterns must have equal shapes")
        word_mask = np.uint64((1 << self._organization.word_width) - 1)
        if patterns.size and np.any(patterns > word_mask):
            raise ValueError(
                f"pattern does not fit in {self._organization.word_width} bits"
            )
        if rows.size and (
            rows.min() < 0 or rows.max() >= self._organization.rows
        ):
            raise IndexError(
                f"row index out of range [0, {self._organization.rows})"
            )
        and_masks, or_masks, xor_masks = self.corruption_masks()
        from repro.kernels import active_backend

        return active_backend().apply_corruption_masks(
            patterns, rows, and_masks, or_masks, xor_masks
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, organization: MemoryOrganization) -> "FaultMap":
        """A fault-free die."""
        return cls(organization, ())

    @classmethod
    def from_cells(
        cls,
        organization: MemoryOrganization,
        cells: Sequence[Tuple[int, int]],
        kind: FaultKind = FaultKind.BIT_FLIP,
    ) -> "FaultMap":
        """Build a map from explicit ``(row, column)`` cell coordinates."""
        return cls(organization, (FaultSite(r, c, kind) for r, c in cells))

    @classmethod
    def from_cell_arrays(
        cls,
        organization: MemoryOrganization,
        rows: np.ndarray,
        columns: np.ndarray,
        kind: FaultKind = FaultKind.BIT_FLIP,
    ) -> "FaultMap":
        """Build a map from parallel row/column index arrays (vectorised).

        Bounds and duplicate checks run as whole-array NumPy operations, so
        Monte-Carlo samplers can construct maps without a per-cell Python
        validation loop.  The result is identical to :meth:`from_cells` over
        ``zip(rows, columns)``.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        columns = np.asarray(columns, dtype=np.int64).ravel()
        if rows.shape != columns.shape:
            raise ValueError("rows and columns must have equal shapes")
        if rows.size:
            if rows.min() < 0 or rows.max() >= organization.rows:
                raise IndexError(
                    f"row out of range [0, {organization.rows})"
                )
            if columns.min() < 0 or columns.max() >= organization.word_width:
                raise IndexError(
                    f"column out of range [0, {organization.word_width})"
                )
            flat = rows * organization.word_width + columns
            if np.unique(flat).size != flat.size:
                raise ValueError("duplicate fault cell in rows/columns arrays")
        # Establish every instance invariant through the canonical
        # constructor, then install the already-validated faults directly.
        fault_map = cls(organization, ())
        fault_map._faults = {
            (int(r), int(c)): FaultSite(int(r), int(c), kind)
            for r, c in zip(rows, columns)
        }
        return fault_map

    @classmethod
    def random_with_count(
        cls,
        organization: MemoryOrganization,
        fault_count: int,
        rng: np.random.Generator,
        kind: FaultKind = FaultKind.BIT_FLIP,
    ) -> "FaultMap":
        """Draw exactly ``fault_count`` faulty cells uniformly without replacement.

        This mirrors the paper's fault-injection procedure: "generating maps of
        random bit-flip locations for each failure count".
        """
        if fault_count < 0:
            raise ValueError("fault_count must be non-negative")
        total = organization.total_cells
        if fault_count > total:
            raise ValueError(
                f"cannot place {fault_count} faults in a memory of {total} cells"
            )
        flat = np.asarray(rng.choice(total, size=fault_count, replace=False))
        width = organization.word_width
        return cls.from_cell_arrays(organization, flat // width, flat % width, kind)

    @classmethod
    def random_batch_with_count(
        cls,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        kind: FaultKind = FaultKind.BIT_FLIP,
        max_faults_per_word: Optional[int] = None,
        max_rounds: int = 1000,
        *,
        vectorized: bool = True,
    ) -> List["FaultMap"]:
        """Draw a whole batch of uniform ``fault_count``-fault maps in NumPy.

        All ``batch_size`` maps are drawn with a vectorised rejection sampler:
        candidate cell indices are drawn with replacement as one
        ``(pending, fault_count)`` matrix, and any map containing a repeated
        cell -- or, when ``max_faults_per_word`` is given, more faults in one
        word row than allowed -- is redrawn until every map is valid.  Each
        accepted map is uniform over the same support a per-map
        without-replacement draw (plus rejection of over-full words) would
        produce, but the whole batch costs a few NumPy passes instead of a
        Python loop per cell.

        ``vectorized=False`` (and, automatically, densely faulty maps for
        which with-replacement rejection would stall) instead draws each map
        separately without replacement -- the exact per-map stream of repeated
        :meth:`random_with_count` calls with per-map rejection, which
        stream-pinned legacy callers rely on.

        The draw sequence is fully determined by ``rng``, so a seeded
        generator yields a reproducible batch regardless of platform.  Raises
        :class:`RuntimeError` if some maps are still invalid after
        ``max_rounds`` redraw rounds and :class:`ValueError` when the request
        is infeasible outright (more faults than cells, or than
        ``max_faults_per_word`` allows).
        """
        if fault_count < 0:
            raise ValueError("fault_count must be non-negative")
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        total = organization.total_cells
        width = organization.word_width
        if fault_count > total:
            raise ValueError(
                f"cannot place {fault_count} faults in a memory of {total} cells"
            )
        if max_faults_per_word is not None:
            if max_faults_per_word < 1:
                raise ValueError("max_faults_per_word must be at least 1")
            if fault_count > organization.rows * min(max_faults_per_word, width):
                raise ValueError(
                    f"cannot place {fault_count} faults with at most "
                    f"{max_faults_per_word} per word in {organization.rows} rows"
                )
        if batch_size == 0:
            return []
        # With-replacement rejection is efficient while collisions are rare
        # (fault_count**2 << total_cells, the Monte-Carlo regime of the
        # paper); densely faulty maps fall back to per-map exact draws, and
        # vectorized=False requests them explicitly for stream compatibility.
        if not vectorized or fault_count * fault_count > total:
            return cls._random_batch_dense(
                organization, fault_count, batch_size, rng, kind,
                max_faults_per_word, max_rounds,
            )
        if fault_count == 0:
            return [cls.empty(organization) for _ in range(batch_size)]
        from repro.kernels import active_backend

        accepted = np.empty((batch_size, fault_count), dtype=np.int64)
        pending = np.arange(batch_size)
        for _ in range(max_rounds):
            if pending.size == 0:
                break
            # Only the validity check is kernelised; the draws themselves
            # stay in NumPy so the rng stream -- and with it every seeded
            # result -- is identical across backends.
            draws = rng.integers(0, total, size=(pending.size, fault_count))
            bad = active_backend().invalid_map_mask(
                np.ascontiguousarray(draws, dtype=np.int64),
                width,
                max_faults_per_word,
            )
            good = ~bad
            accepted[pending[good]] = draws[good]
            pending = pending[bad]
        if pending.size:
            raise RuntimeError(
                f"could not draw {pending.size} valid fault maps after "
                f"{max_rounds} rounds; relax max_faults_per_word or lower "
                f"fault_count"
            )
        return [
            cls.from_cell_arrays(
                organization, accepted[i] // width, accepted[i] % width, kind
            )
            for i in range(batch_size)
        ]

    @classmethod
    def _random_batch_dense(
        cls,
        organization: MemoryOrganization,
        fault_count: int,
        batch_size: int,
        rng: np.random.Generator,
        kind: FaultKind,
        max_faults_per_word: Optional[int],
        max_rounds: int,
    ) -> List["FaultMap"]:
        """Per-map without-replacement fallback for densely faulty batches."""
        maps: List["FaultMap"] = []
        for _ in range(batch_size):
            for _attempt in range(max_rounds):
                candidate = cls.random_with_count(
                    organization, fault_count, rng, kind=kind
                )
                if (
                    max_faults_per_word is None
                    or candidate.max_faults_per_row() <= max_faults_per_word
                ):
                    maps.append(candidate)
                    break
            else:
                raise RuntimeError(
                    f"could not draw a fault map with at most "
                    f"{max_faults_per_word} faults per word after "
                    f"{max_rounds} attempts"
                )
        return maps

    @classmethod
    def random_with_pcell(
        cls,
        organization: MemoryOrganization,
        p_cell: float,
        rng: np.random.Generator,
        kind: FaultKind = FaultKind.BIT_FLIP,
    ) -> "FaultMap":
        """Draw a die where every cell independently fails with probability ``p_cell``."""
        if not 0.0 <= p_cell <= 1.0:
            raise ValueError("p_cell must be a probability in [0, 1]")
        count = int(rng.binomial(organization.total_cells, p_cell))
        return cls.random_with_count(organization, count, rng, kind=kind)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (used to persist BIST results)."""
        return {
            "rows": self._organization.rows,
            "word_width": self._organization.word_width,
            "faults": [
                {"row": f.row, "column": f.column, "kind": f.kind.value}
                for f in self
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultMap":
        """Inverse of :meth:`to_dict`."""
        organization = MemoryOrganization(
            rows=int(data["rows"]), word_width=int(data["word_width"])
        )
        faults = [
            FaultSite(int(f["row"]), int(f["column"]), FaultKind(f["kind"]))
            for f in data["faults"]  # type: ignore[index]
        ]
        return cls(organization, faults)

    def to_json(self) -> str:
        """Serialise the map to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FaultMap":
        """Deserialise a map produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultMap({self._organization.rows}x{self._organization.word_width}, "
            f"{self.fault_count} faults)"
        )
