"""Bit-accurate SRAM array model with persistent faulty cells.

:class:`SramArray` models the raw storage that sits behind every protection
scheme: a grid of ``rows x word_width`` bit-cells, some of which may be faulty
according to a :class:`~repro.memory.faults.FaultMap`.  Writes always record
the intended value; reads apply the fault behaviour of each faulty cell, so
the observable corruption matches what a real die with persistent defects
would exhibit.

The array is deliberately scheme-agnostic: ECC parity columns, FM-LUT columns
and shifting are all layered on top by :mod:`repro.memory.controller` and the
schemes in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.memory.faults import FaultMap
from repro.memory.organization import MemoryOrganization
from repro.memory.words import bit_mask

__all__ = ["SramArray"]


class SramArray:
    """An R x W SRAM array whose cells may be defective.

    Parameters
    ----------
    organization:
        Geometry of the array.
    fault_map:
        Persistent fault map of this die.  ``None`` means a fault-free die.
    """

    def __init__(
        self,
        organization: MemoryOrganization,
        fault_map: Optional[FaultMap] = None,
    ) -> None:
        if fault_map is not None and fault_map.organization != organization:
            raise ValueError(
                "fault map geometry does not match the array organization"
            )
        self._organization = organization
        self._fault_map = fault_map if fault_map is not None else FaultMap.empty(organization)
        self._storage = np.zeros(organization.rows, dtype=np.uint64)
        self._mask = np.uint64(bit_mask(organization.word_width))
        if organization.word_width > 63:
            raise ValueError("SramArray supports word widths up to 63 bits")
        self._read_count = 0
        self._write_count = 0

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def organization(self) -> MemoryOrganization:
        """Geometry of the array."""
        return self._organization

    @property
    def fault_map(self) -> FaultMap:
        """Persistent fault map of this die."""
        return self._fault_map

    @property
    def rows(self) -> int:
        """Number of word rows."""
        return self._organization.rows

    @property
    def word_width(self) -> int:
        """Bits per word."""
        return self._organization.word_width

    @property
    def read_count(self) -> int:
        """Number of word reads serviced since construction (activity statistics)."""
        return self._read_count

    @property
    def write_count(self) -> int:
        """Number of word writes serviced since construction."""
        return self._write_count

    # ------------------------------------------------------------------ #
    # Scalar access
    # ------------------------------------------------------------------ #
    def write_word(self, row: int, pattern: int) -> None:
        """Store an unsigned word pattern at ``row`` (fault effects apply on read)."""
        self._organization.check_row(row)
        if pattern < 0 or pattern >> self.word_width:
            raise ValueError(
                f"pattern {pattern:#x} does not fit in {self.word_width} bits"
            )
        self._storage[row] = np.uint64(pattern)
        self._write_count += 1

    def read_word(self, row: int) -> int:
        """Read the word at ``row``; faulty cells corrupt the returned pattern."""
        self._organization.check_row(row)
        self._read_count += 1
        stored = int(self._storage[row])
        return self._fault_map.corrupt_word(row, stored)

    def read_word_raw(self, row: int) -> int:
        """Read the *intended* (fault-free) stored pattern; for testing/debug only."""
        self._organization.check_row(row)
        return int(self._storage[row])

    # ------------------------------------------------------------------ #
    # Bulk access
    # ------------------------------------------------------------------ #
    def write_block(self, start_row: int, patterns: Sequence[int] | np.ndarray) -> None:
        """Write consecutive rows starting at ``start_row``."""
        patterns = np.asarray(patterns, dtype=np.uint64)
        if patterns.ndim != 1:
            raise ValueError("patterns must be one-dimensional")
        end = start_row + len(patterns)
        self._organization.check_row(start_row)
        if end > self.rows:
            raise IndexError(
                f"block of {len(patterns)} words starting at row {start_row} "
                f"exceeds the array ({self.rows} rows)"
            )
        if np.any(patterns > self._mask):
            raise ValueError(f"pattern exceeds {self.word_width}-bit range")
        self._storage[start_row:end] = patterns
        self._write_count += len(patterns)

    def read_block(self, start_row: int, length: int) -> np.ndarray:
        """Read ``length`` consecutive rows; faults are applied per row."""
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return np.zeros(0, dtype=np.uint64)
        self._organization.check_row(start_row)
        end = start_row + length
        if end > self.rows:
            raise IndexError("block read exceeds the array")
        self._read_count += length
        block = self._storage[start_row:end].copy()
        for row in self._fault_map.faulty_rows():
            if start_row <= row < end:
                block[row - start_row] = np.uint64(
                    self._fault_map.corrupt_word(row, int(self._storage[row]))
                )
        return block

    def dump(self) -> np.ndarray:
        """Fault-affected view of the whole array (one read of every row)."""
        return self.read_block(0, self.rows)

    def fill(self, pattern: int) -> None:
        """Write the same pattern to every row (used by BIST march elements)."""
        if pattern < 0 or pattern >> self.word_width:
            raise ValueError(f"pattern does not fit in {self.word_width} bits")
        self._storage[:] = np.uint64(pattern)
        self._write_count += self.rows

    def clear(self) -> None:
        """Zero the entire array."""
        self.fill(0)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def observed_error_mask(self, row: int) -> int:
        """XOR between the intended and the observed pattern of ``row``."""
        return self.read_word(row) ^ self.read_word_raw(row)

    def has_faults(self) -> bool:
        """Whether this die contains at least one faulty cell."""
        return self._fault_map.fault_count > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SramArray({self.rows}x{self.word_width}, "
            f"{self._fault_map.fault_count} faulty cells)"
        )
