"""Memory built-in self test (BIST) based on March algorithms.

The paper programs its fault-map LUT from fault locations "determined during
BIST ... executed either during post-fabrication testing or during power-on
startup testing (POST)".  This module implements that step faithfully: it
exercises the raw :class:`~repro.memory.array.SramArray` with classic March
test sequences (MATS+, March C-) and reports every cell whose observed value
differs from the written one, together with the inferred stuck-at polarity.

The BIST result is what the bit-shuffling scheme and the yield model consume;
they never peek at the golden :class:`~repro.memory.faults.FaultMap` directly,
so the full production flow (manufacture -> test -> program FM-LUT -> operate)
is represented end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple

from repro.memory.array import SramArray
from repro.memory.faults import FaultKind, FaultMap, FaultSite
from repro.memory.words import bit_mask

__all__ = ["MarchAlgorithm", "BistResult", "run_march_test"]


class MarchAlgorithm(str, Enum):
    """Supported March test algorithms.

    ``MATS_PLUS`` is the cheapest complete test for stuck-at faults (5N
    operations); ``MARCH_CMINUS`` (10N) additionally covers address-decoder and
    transition faults.  For the persistent stuck-at / flip faults modelled
    here both locate every faulty cell; they differ in operation count, which
    the BIST cost report exposes.
    """

    MATS_PLUS = "mats+"
    MARCH_CMINUS = "march_c-"


@dataclass
class BistResult:
    """Outcome of a BIST run.

    Attributes
    ----------
    algorithm:
        The March algorithm that was executed.
    faulty_cells:
        Sorted list of ``(row, column)`` coordinates that failed at least one
        march element.
    inferred_kinds:
        Best-effort classification of each faulty cell (stuck-at-0/1 if the
        cell failed only under one background polarity, bit-flip otherwise).
    operations:
        Total number of word-level read+write operations performed, the
        conventional cost measure of a march test.
    """

    algorithm: MarchAlgorithm
    faulty_cells: List[Tuple[int, int]]
    inferred_kinds: Dict[Tuple[int, int], FaultKind] = field(default_factory=dict)
    operations: int = 0

    @property
    def fault_count(self) -> int:
        """Number of distinct faulty cells detected."""
        return len(self.faulty_cells)

    def faulty_columns_by_row(self) -> Dict[int, List[int]]:
        """Mapping row -> sorted faulty bit positions (FM-LUT programming input)."""
        result: Dict[int, List[int]] = {}
        for row, column in self.faulty_cells:
            result.setdefault(row, []).append(column)
        for columns in result.values():
            columns.sort()
        return result

    def to_fault_map(self, organization) -> FaultMap:
        """Convert the detected faults to a :class:`FaultMap` with inferred kinds."""
        sites = [
            FaultSite(row, column, self.inferred_kinds.get((row, column), FaultKind.BIT_FLIP))
            for row, column in self.faulty_cells
        ]
        return FaultMap(organization, sites)


def _scan_background(
    array: SramArray, background: int
) -> Tuple[Dict[Tuple[int, int], int], int]:
    """Write ``background`` to every row, read it back, return mismatching cells.

    Returns a mapping ``(row, column) -> observed_bit`` for cells whose read
    value differs from the written background, plus the operation count.
    """
    width = array.word_width
    operations = 0
    mismatches: Dict[Tuple[int, int], int] = {}
    for row in range(array.rows):
        array.write_word(row, background)
        operations += 1
    for row in range(array.rows):
        observed = array.read_word(row)
        operations += 1
        diff = observed ^ background
        while diff:
            column = (diff & -diff).bit_length() - 1
            mismatches[(row, column)] = (observed >> column) & 1
            diff &= diff - 1
    return mismatches, operations


def run_march_test(
    array: SramArray, algorithm: MarchAlgorithm = MarchAlgorithm.MARCH_CMINUS
) -> BistResult:
    """Run a March test on ``array`` and report every faulty cell.

    The test writes and reads full backgrounds of all-zeros and all-ones (the
    word-level equivalent of the bit-oriented march elements), so any cell that
    cannot hold a 0, cannot hold a 1, or flips the stored value is detected.
    The original array contents are destroyed, exactly as in real BIST; callers
    run the test before the memory is put into service.
    """
    width = array.word_width
    zeros = 0
    ones = bit_mask(width)

    operations = 0
    # Element pair 1: background of zeros.
    zero_fail, ops = _scan_background(array, zeros)
    operations += ops
    # Element pair 2: background of ones.
    one_fail, ops = _scan_background(array, ones)
    operations += ops

    if algorithm is MarchAlgorithm.MARCH_CMINUS:
        # March C- repeats the sweeps in descending address order; for the
        # persistent fault model this finds the same cells but doubles the
        # operation count, which we account for faithfully.
        zero_fail_desc, ops = _scan_background(array, zeros)
        operations += ops
        one_fail_desc, ops = _scan_background(array, ones)
        operations += ops
        zero_fail.update(zero_fail_desc)
        one_fail.update(one_fail_desc)

    faulty = sorted(set(zero_fail) | set(one_fail))
    kinds: Dict[Tuple[int, int], FaultKind] = {}
    for cell in faulty:
        failed_zero = cell in zero_fail
        failed_one = cell in one_fail
        if failed_zero and failed_one:
            kinds[cell] = FaultKind.BIT_FLIP
        elif failed_zero:
            # Wrote 0, read 1 -> the cell cannot hold a zero.
            kinds[cell] = FaultKind.STUCK_AT_ONE
        else:
            kinds[cell] = FaultKind.STUCK_AT_ZERO

    array.clear()
    return BistResult(
        algorithm=algorithm,
        faulty_cells=faulty,
        inferred_kinds=kinds,
        operations=operations,
    )
