"""Memory geometry: rows, word width, capacity.

The paper evaluates a 16 kB data memory with 32-bit words (4096 rows of
32 bit-cells).  :class:`MemoryOrganization` captures that geometry and the
derived quantities every other module needs (total cell count ``M = R * W``,
address ranges, byte capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryOrganization"]


@dataclass(frozen=True)
class MemoryOrganization:
    """Geometry of an R x W SRAM array storing one W-bit word per row.

    Parameters
    ----------
    rows:
        Number of word rows ``R``.
    word_width:
        Bits per word ``W`` (the paper uses 32).
    """

    rows: int
    word_width: int = 32

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(f"rows must be positive, got {self.rows}")
        if self.word_width <= 0:
            raise ValueError(f"word_width must be positive, got {self.word_width}")

    @property
    def total_cells(self) -> int:
        """Total bit-cell count ``M = R * W`` (enters the yield formula, Eq. 4)."""
        return self.rows * self.word_width

    @property
    def capacity_bits(self) -> int:
        """Usable data capacity in bits (same as :attr:`total_cells`)."""
        return self.total_cells

    @property
    def capacity_bytes(self) -> int:
        """Usable data capacity in bytes (rounded down)."""
        return self.capacity_bits // 8

    @property
    def capacity_kib(self) -> float:
        """Usable data capacity in KiB."""
        return self.capacity_bytes / 1024.0

    def check_row(self, row: int) -> None:
        """Raise :class:`IndexError` if ``row`` is not a valid row address."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")

    def check_column(self, column: int) -> None:
        """Raise :class:`IndexError` if ``column`` is not a valid bit position."""
        if not 0 <= column < self.word_width:
            raise IndexError(
                f"column {column} out of range [0, {self.word_width})"
            )

    @classmethod
    def from_capacity(
        cls, capacity_bytes: int, word_width: int = 32
    ) -> "MemoryOrganization":
        """Build the organization for a memory of ``capacity_bytes`` total data bytes.

        The paper's 16 kB / 32-bit memory corresponds to
        ``MemoryOrganization.from_capacity(16 * 1024)`` -> 4096 rows.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if word_width % 8 != 0:
            raise ValueError("word_width must be a multiple of 8 to size by bytes")
        bytes_per_word = word_width // 8
        if capacity_bytes % bytes_per_word != 0:
            raise ValueError(
                f"capacity {capacity_bytes} B is not a whole number of "
                f"{bytes_per_word}-byte words"
            )
        return cls(rows=capacity_bytes // bytes_per_word, word_width=word_width)

    @classmethod
    def paper_16kb(cls) -> "MemoryOrganization":
        """The 16 kB, 32-bit-word memory used throughout the paper's evaluation."""
        return cls.from_capacity(16 * 1024, word_width=32)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryOrganization({self.rows} rows x {self.word_width} bits, "
            f"{self.capacity_kib:.1f} KiB)"
        )
