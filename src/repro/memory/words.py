"""Bit-level word codecs used throughout the memory substrate.

The paper stores 32-bit 2's-complement integers in an SRAM whose cells may be
faulty, and mitigates faults by circularly shifting data words so the least
significant bits land on faulty cells.  All of those primitives live here:

* packing/unpacking Python integers to/from fixed-width 2's complement,
* bit extraction and mutation,
* right/left circular shifts (the core operation of the bit-shuffling scheme),
* vectorised numpy equivalents for bulk simulation of large memories,
  including array-wide 2's-complement packing and bitwise parity (the
  primitives behind the batch ``encode_words``/``decode_words`` datapath).

All word-level functions treat a word as an unsigned ``width``-bit pattern;
signed interpretation happens only at the 2's-complement boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bit_mask",
    "clear_bit",
    "flip_bit",
    "from_twos_complement",
    "from_twos_complement_array",
    "get_bit",
    "parity_array",
    "popcount",
    "rotate_left",
    "rotate_right",
    "rotate_right_array",
    "rotate_left_array",
    "set_bit",
    "to_bit_array",
    "from_bit_array",
    "to_twos_complement",
    "to_twos_complement_array",
]


def bit_mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> bit_mask(8)
    255
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def _check_width(width: int) -> None:
    if width <= 0:
        raise ValueError(f"word width must be positive, got {width}")


def _check_pattern(pattern: int, width: int) -> None:
    if pattern < 0 or pattern > bit_mask(width):
        raise ValueError(
            f"pattern {pattern:#x} does not fit in an unsigned {width}-bit word"
        )


def to_twos_complement(value: int, width: int) -> int:
    """Encode a signed integer as an unsigned ``width``-bit 2's-complement pattern.

    Raises :class:`ValueError` if ``value`` is outside the representable range
    ``[-2**(width-1), 2**(width-1) - 1]``.

    >>> to_twos_complement(-1, 8)
    255
    >>> to_twos_complement(5, 8)
    5
    """
    _check_width(width)
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if value < lo or value > hi:
        raise ValueError(f"value {value} out of range for {width}-bit 2's complement")
    return value & bit_mask(width)


def from_twos_complement(pattern: int, width: int) -> int:
    """Decode an unsigned ``width``-bit pattern as a signed 2's-complement integer.

    >>> from_twos_complement(255, 8)
    -1
    """
    _check_width(width)
    _check_pattern(pattern, width)
    sign_bit = 1 << (width - 1)
    if pattern & sign_bit:
        return pattern - (1 << width)
    return pattern


def get_bit(pattern: int, position: int) -> int:
    """Return bit ``position`` (0 = LSB) of ``pattern`` as 0 or 1."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (pattern >> position) & 1


def set_bit(pattern: int, position: int) -> int:
    """Return ``pattern`` with bit ``position`` forced to 1."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return pattern | (1 << position)


def clear_bit(pattern: int, position: int) -> int:
    """Return ``pattern`` with bit ``position`` forced to 0."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return pattern & ~(1 << position)


def flip_bit(pattern: int, position: int) -> int:
    """Return ``pattern`` with bit ``position`` inverted."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return pattern ^ (1 << position)


def popcount(pattern: int) -> int:
    """Number of set bits in a non-negative integer."""
    if pattern < 0:
        raise ValueError("popcount is defined for non-negative integers only")
    return bin(pattern).count("1")


def rotate_right(pattern: int, amount: int, width: int) -> int:
    """Right-circular-shift an unsigned ``width``-bit pattern by ``amount`` bits.

    This is the write-path operation of the bit-shuffling scheme: bit 0 of the
    input lands at bit ``(width - amount) % width`` of the output.

    >>> rotate_right(0b0001, 1, 4)
    8
    """
    _check_width(width)
    _check_pattern(pattern, width)
    amount %= width
    if amount == 0:
        return pattern
    mask = bit_mask(width)
    return ((pattern >> amount) | (pattern << (width - amount))) & mask


def rotate_left(pattern: int, amount: int, width: int) -> int:
    """Left-circular-shift an unsigned ``width``-bit pattern by ``amount`` bits.

    Inverse of :func:`rotate_right` with the same ``amount``; this is the
    read-path restore operation of the bit-shuffling scheme.

    >>> rotate_left(0b1000, 1, 4)
    1
    """
    _check_width(width)
    _check_pattern(pattern, width)
    amount %= width
    if amount == 0:
        return pattern
    mask = bit_mask(width)
    return ((pattern << amount) | (pattern >> (width - amount))) & mask


def to_bit_array(pattern: int, width: int) -> np.ndarray:
    """Expand a ``width``-bit pattern into an ndarray of 0/1 with index 0 = LSB."""
    _check_width(width)
    _check_pattern(pattern, width)
    return np.array([(pattern >> i) & 1 for i in range(width)], dtype=np.uint8)


def from_bit_array(bits: np.ndarray) -> int:
    """Pack an ndarray of 0/1 values (index 0 = LSB) back into an integer."""
    bits = np.asarray(bits)
    if bits.ndim != 1:
        raise ValueError("bit array must be one-dimensional")
    if not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bit array may only contain 0 and 1")
    value = 0
    for i, b in enumerate(bits.tolist()):
        if b:
            value |= 1 << i
    return value


def to_twos_complement_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`to_twos_complement`: signed int64 codes -> uint64 patterns.

    Supports widths up to 63 bits (patterns are returned as ``uint64``).
    """
    _check_width(width)
    if width > 63:
        raise ValueError("vectorised 2's complement supports widths up to 63 bits")
    values = np.asarray(values, dtype=np.int64)
    from repro.kernels import active_backend

    return active_backend().to_twos_complement(values, width)


def from_twos_complement_array(patterns: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`from_twos_complement`: uint64 patterns -> signed int64 codes."""
    _check_width(width)
    if width > 63:
        raise ValueError("vectorised 2's complement supports widths up to 63 bits")
    patterns = np.asarray(patterns, dtype=np.uint64)
    from repro.kernels import active_backend

    return active_backend().from_twos_complement(patterns, width)


def parity_array(patterns: np.ndarray) -> np.ndarray:
    """Bitwise parity (popcount mod 2) of each uint64 pattern, as uint64 0/1."""
    patterns = np.asarray(patterns, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return (np.bitwise_count(patterns) & np.uint8(1)).astype(np.uint64)
    # XOR-fold fallback for NumPy 1.x.
    folded = patterns.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        folded ^= folded >> np.uint64(shift)
    return folded & np.uint64(1)


def rotate_right_array(patterns: np.ndarray, amounts: np.ndarray, width: int) -> np.ndarray:
    """Vectorised right-circular shift of unsigned patterns (dtype uint64).

    ``patterns`` and ``amounts`` are broadcast against each other.  Used by the
    bulk memory simulator to shuffle whole arrays of words at once.
    """
    _check_width(width)
    if width > 63:
        raise ValueError("vectorised rotation supports widths up to 63 bits")
    patterns = np.asarray(patterns, dtype=np.uint64)
    amounts = np.asarray(amounts, dtype=np.uint64) % np.uint64(width)
    mask = np.uint64(bit_mask(width))
    if np.any(patterns > mask):
        raise ValueError(f"pattern exceeds {width}-bit range")
    w = np.uint64(width)
    left = np.where(amounts == 0, np.uint64(0), (patterns << (w - amounts)) & mask)
    return ((patterns >> amounts) | left) & mask


def rotate_left_array(patterns: np.ndarray, amounts: np.ndarray, width: int) -> np.ndarray:
    """Vectorised left-circular shift of unsigned patterns (dtype uint64)."""
    _check_width(width)
    if width > 63:
        raise ValueError("vectorised rotation supports widths up to 63 bits")
    patterns = np.asarray(patterns, dtype=np.uint64)
    amounts = np.asarray(amounts, dtype=np.uint64) % np.uint64(width)
    mask = np.uint64(bit_mask(width))
    if np.any(patterns > mask):
        raise ValueError(f"pattern exceeds {width}-bit range")
    w = np.uint64(width)
    right = np.where(amounts == 0, np.uint64(0), patterns >> (w - amounts))
    return ((patterns << amounts) | right) & mask
