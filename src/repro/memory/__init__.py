"""SRAM memory substrate: word codecs, arrays, fault maps, BIST, and controllers.

This package models the physical data memory that the DAC'15 paper protects.
It provides:

* :mod:`repro.memory.words` -- bit-level word codecs (2's complement packing,
  circular shifts) used by every protection scheme.
* :mod:`repro.memory.organization` -- memory geometry (rows, word width,
  capacity) of the R x W SRAM array.
* :mod:`repro.memory.faults` -- persistent per-die fault maps with stuck-at
  semantics and random fault-map generation.
* :mod:`repro.memory.array` -- the bit-accurate SRAM array model whose cells
  may be faulty.
* :mod:`repro.memory.bist` -- memory built-in self test (March algorithms)
  used to locate faulty cells and build the fault-map LUT.
* :mod:`repro.memory.controller` -- a protected memory that routes every
  read/write through a protection scheme (ECC, P-ECC, bit-shuffling, none).
* :mod:`repro.memory.redundancy` -- spare row/column repair, the conventional
  yield-recovery substrate the paper's Section 2 argues against at scaled
  voltages.
"""

from repro.memory.array import SramArray
from repro.memory.bist import BistResult, MarchAlgorithm, run_march_test
from repro.memory.controller import ProtectedMemory
from repro.memory.faults import FaultKind, FaultMap, FaultSite
from repro.memory.organization import MemoryOrganization
from repro.memory.redundancy import (
    RedundancyRepair,
    RepairResult,
    repair_yield,
    spares_for_yield_target,
)
from repro.memory.words import (
    from_twos_complement,
    rotate_left,
    rotate_right,
    to_twos_complement,
)

__all__ = [
    "BistResult",
    "FaultKind",
    "FaultMap",
    "FaultSite",
    "MarchAlgorithm",
    "MemoryOrganization",
    "ProtectedMemory",
    "RedundancyRepair",
    "RepairResult",
    "SramArray",
    "from_twos_complement",
    "rotate_left",
    "repair_yield",
    "rotate_right",
    "run_march_test",
    "spares_for_yield_target",
    "to_twos_complement",
]
