"""Protected memory: an SRAM array accessed through a protection scheme.

:class:`ProtectedMemory` wires the pieces of the paper's system together into
the full production flow:

1. manufacture a die (an :class:`~repro.memory.array.SramArray` with a
   persistent fault map),
2. run BIST to locate the faulty cells,
3. program the protection scheme (FM-LUT for bit-shuffling; ECC needs no
   programming),
4. serve word reads and writes through the scheme's encode/decode path.

Signed 2's-complement accessors are provided because the applications store
signed fixed-point values; the raw unsigned path is available too.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.base import ProtectionScheme
from repro.memory.array import SramArray
from repro.memory.bist import BistResult, MarchAlgorithm, run_march_test
from repro.memory.faults import FaultMap
from repro.memory.organization import MemoryOrganization
from repro.memory.words import from_twos_complement, to_twos_complement

__all__ = ["ProtectedMemory"]


class ProtectedMemory:
    """A faulty SRAM die operated behind a protection scheme.

    Parameters
    ----------
    organization:
        Logical geometry (rows x data word width) of the memory.
    scheme:
        The protection scheme to apply.  Its ``word_width`` must match the
        organization.
    fault_map:
        Fault map of the die's *data* columns.  Scheme overhead columns
        (parity bits, FM-LUT bits) are modelled as fault-free, matching the
        paper's evaluation where the fault population is the 16 kB of data
        cells.
    run_bist:
        If true (default), BIST is executed at construction and the scheme is
        programmed from its result.  Set to false to drive the test flow
        manually via :meth:`test_and_program`.
    """

    def __init__(
        self,
        organization: MemoryOrganization,
        scheme: ProtectionScheme,
        fault_map: Optional[FaultMap] = None,
        run_bist: bool = True,
        bist_algorithm: MarchAlgorithm = MarchAlgorithm.MATS_PLUS,
    ) -> None:
        if scheme.word_width != organization.word_width:
            raise ValueError(
                f"scheme word width {scheme.word_width} does not match memory "
                f"word width {organization.word_width}"
            )
        self._organization = organization
        self._scheme = scheme
        storage_org = MemoryOrganization(
            rows=organization.rows, word_width=scheme.storage_width
        )
        storage_faults = (
            FaultMap.empty(storage_org)
            if fault_map is None
            else self._lift_fault_map(fault_map, storage_org)
        )
        self._array = SramArray(storage_org, storage_faults)
        self._bist_result: Optional[BistResult] = None
        if hasattr(scheme, "attach_rows"):
            scheme.attach_rows(organization.rows)
        if run_bist:
            self.test_and_program(bist_algorithm)

    @staticmethod
    def _lift_fault_map(
        fault_map: FaultMap, storage_org: MemoryOrganization
    ) -> FaultMap:
        """Re-host a data-column fault map onto the wider storage organization."""
        if fault_map.organization.rows != storage_org.rows:
            raise ValueError("fault map row count does not match the memory")
        if fault_map.organization.word_width > storage_org.word_width:
            raise ValueError(
                "fault map is wider than the storage array; faults must target "
                "the data columns"
            )
        return FaultMap(storage_org, list(fault_map))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def organization(self) -> MemoryOrganization:
        """Logical (data) geometry of the memory."""
        return self._organization

    @property
    def scheme(self) -> ProtectionScheme:
        """The active protection scheme."""
        return self._scheme

    @property
    def array(self) -> SramArray:
        """The underlying physical array (data + scheme overhead columns)."""
        return self._array

    @property
    def rows(self) -> int:
        """Number of logical words the memory holds."""
        return self._organization.rows

    @property
    def word_width(self) -> int:
        """Logical data word width."""
        return self._organization.word_width

    @property
    def bist_result(self) -> Optional[BistResult]:
        """Result of the last BIST run (``None`` if BIST has not been executed)."""
        return self._bist_result

    # ------------------------------------------------------------------ #
    # Test flow
    # ------------------------------------------------------------------ #
    def test_and_program(
        self, algorithm: MarchAlgorithm = MarchAlgorithm.MATS_PLUS
    ) -> BistResult:
        """Run BIST on the physical array and program the scheme from its findings.

        Only faults detected in the data columns are forwarded to the scheme;
        this mirrors the FM-LUT programming step of the paper (faults in the
        scheme's own columns would be handled by conventional repair and are
        out of the fault population here).
        """
        result = run_march_test(self._array, algorithm)
        data_faults = {
            row: [c for c in columns if c < self.word_width]
            for row, columns in result.faulty_columns_by_row().items()
        }
        data_faults = {row: cols for row, cols in data_faults.items() if cols}
        self._scheme.program(data_faults)
        self._bist_result = result
        return result

    # ------------------------------------------------------------------ #
    # Unsigned word access
    # ------------------------------------------------------------------ #
    def write_word(self, row: int, data: int) -> None:
        """Write an unsigned data word through the protection scheme."""
        self._organization.check_row(row)
        self._array.write_word(row, self._scheme.encode_word(row, data))

    def read_word(self, row: int) -> int:
        """Read an unsigned data word; the scheme mitigates/corrects fault effects."""
        self._organization.check_row(row)
        return self._scheme.decode_word(row, self._array.read_word(row))

    # ------------------------------------------------------------------ #
    # Signed (2's complement) access
    # ------------------------------------------------------------------ #
    def write_int(self, row: int, value: int) -> None:
        """Write a signed integer in 2's-complement representation."""
        self.write_word(row, to_twos_complement(value, self.word_width))

    def read_int(self, row: int) -> int:
        """Read a signed integer in 2's-complement representation."""
        return from_twos_complement(self.read_word(row), self.word_width)

    # ------------------------------------------------------------------ #
    # Bulk access
    # ------------------------------------------------------------------ #
    def write_words(self, start_row: int, data: Sequence[int] | np.ndarray) -> None:
        """Write consecutive unsigned words starting at ``start_row``."""
        for offset, value in enumerate(np.asarray(data, dtype=np.uint64).tolist()):
            self.write_word(start_row + offset, int(value))

    def read_words(self, start_row: int, length: int) -> np.ndarray:
        """Read ``length`` consecutive unsigned words starting at ``start_row``."""
        return np.array(
            [self.read_word(start_row + offset) for offset in range(length)],
            dtype=np.uint64,
        )

    def write_ints(self, start_row: int, values: Sequence[int] | np.ndarray) -> None:
        """Write consecutive signed integers starting at ``start_row``."""
        for offset, value in enumerate(np.asarray(values, dtype=np.int64).tolist()):
            self.write_int(start_row + offset, int(value))

    def read_ints(self, start_row: int, length: int) -> np.ndarray:
        """Read ``length`` consecutive signed integers starting at ``start_row``."""
        return np.array(
            [self.read_int(start_row + offset) for offset in range(length)],
            dtype=np.int64,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedMemory({self.rows}x{self.word_width}, "
            f"scheme={self._scheme.name})"
        )
