"""Row/column redundancy repair -- the conventional yield-recovery substrate.

Section 2 of the paper motivates the work by noting that the classical
response to manufacturing faults -- spare rows and columns that replace any
row/column containing a faulty cell -- becomes uneconomical as the failure
probability grows: "as the number of failures increases, the number of
redundant rows/columns required to replace every faulty row/column increases
tremendously".  This module provides that substrate so the claim can be
quantified and compared against the paper's scheme:

* :class:`RedundancyRepair` performs the repair allocation for one die: it
  remaps faulty rows to spare rows and faulty columns to spare columns (rows
  first, then columns for whatever remains, which is the standard greedy
  must-repair heuristic for sparse fault maps).
* :func:`repair_yield` evaluates the repaired yield analytically over the
  failure-count distribution of Eq. 4.
* :func:`spares_for_yield_target` reports how many spare rows are needed to
  reach a yield target at a given ``Pcell`` -- the "increases tremendously"
  curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.faults import FaultMap
from repro.memory.organization import MemoryOrganization

__all__ = ["RepairResult", "RedundancyRepair", "repair_yield", "spares_for_yield_target"]


@dataclass
class RepairResult:
    """Outcome of allocating spare rows/columns to one die's fault map.

    Attributes
    ----------
    repaired:
        Whether every faulty cell was covered by a spare row or column.
    row_replacements:
        Mapping of faulty row index -> spare row index used.
    column_replacements:
        Mapping of faulty column index -> spare column index used.
    uncovered_faults:
        ``(row, column)`` cells left unrepaired (empty when ``repaired``).
    """

    repaired: bool
    row_replacements: Dict[int, int] = field(default_factory=dict)
    column_replacements: Dict[int, int] = field(default_factory=dict)
    uncovered_faults: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def spare_rows_used(self) -> int:
        """Number of spare rows consumed by the repair."""
        return len(self.row_replacements)

    @property
    def spare_columns_used(self) -> int:
        """Number of spare columns consumed by the repair."""
        return len(self.column_replacements)


class RedundancyRepair:
    """Greedy spare-row / spare-column allocator for a single die.

    Parameters
    ----------
    spare_rows:
        Number of spare rows available on the die.
    spare_columns:
        Number of spare columns available on the die.
    """

    def __init__(self, spare_rows: int = 0, spare_columns: int = 0) -> None:
        if spare_rows < 0 or spare_columns < 0:
            raise ValueError("spare counts must be non-negative")
        self._spare_rows = spare_rows
        self._spare_columns = spare_columns

    @property
    def spare_rows(self) -> int:
        """Available spare rows."""
        return self._spare_rows

    @property
    def spare_columns(self) -> int:
        """Available spare columns."""
        return self._spare_columns

    @property
    def storage_overhead_cells(self) -> int:
        """Extra cells required by the spares for a given organization (per row/column)."""
        return self._spare_rows + self._spare_columns

    def overhead_cells(self, organization: MemoryOrganization) -> int:
        """Total extra bit-cells the spares add to ``organization``."""
        return (
            self._spare_rows * organization.word_width
            + self._spare_columns * (organization.rows + self._spare_rows)
        )

    def repair(self, fault_map: FaultMap) -> RepairResult:
        """Allocate spares to cover every faulty cell of ``fault_map``.

        Rows with the most faults are replaced first (they are "must repair"
        candidates); remaining faulty cells are covered by column spares, most
        frequent columns first.  This greedy order is optimal when faults are
        sparse (at most a handful per die), which is the regime of interest.
        """
        by_row = fault_map.faulty_columns_by_row()
        # Replace the rows with the largest fault counts first.
        rows_by_need = sorted(by_row, key=lambda r: len(by_row[r]), reverse=True)
        row_replacements: Dict[int, int] = {}
        for spare_index, row in enumerate(rows_by_need[: self._spare_rows]):
            row_replacements[row] = spare_index

        remaining: List[Tuple[int, int]] = [
            (row, column)
            for row, columns in by_row.items()
            if row not in row_replacements
            for column in columns
        ]

        # Cover what is left with column spares, most-loaded columns first.
        column_load: Dict[int, int] = {}
        for _row, column in remaining:
            column_load[column] = column_load.get(column, 0) + 1
        columns_by_need = sorted(column_load, key=lambda c: column_load[c], reverse=True)
        column_replacements: Dict[int, int] = {
            column: spare_index
            for spare_index, column in enumerate(columns_by_need[: self._spare_columns])
        }

        uncovered = [
            (row, column)
            for row, column in remaining
            if column not in column_replacements
        ]
        return RepairResult(
            repaired=not uncovered,
            row_replacements=row_replacements,
            column_replacements=column_replacements,
            uncovered_faults=uncovered,
        )

    def remaining_faults(self, fault_map: FaultMap) -> FaultMap:
        """The post-repair fault map: every fault no spare row/column covered.

        Spares are assumed fault-free, so a repaired die exposes exactly the
        uncovered faults of :meth:`repair` -- with their original
        :class:`~repro.memory.faults.FaultKind` preserved.  The result never
        has more faults than the input (repair only removes), and together
        with the covered cells it partitions the input's fault set (mass
        conservation).  This is the map the fault-scenario pipeline hands to
        protection encoding.
        """
        result = self.repair(fault_map)
        uncovered = set(result.uncovered_faults)
        return FaultMap(
            fault_map.organization,
            (f for f in fault_map if (f.row, f.column) in uncovered),
        )


def repair_yield(
    organization: MemoryOrganization,
    p_cell: float,
    spare_rows: int,
    max_failures: Optional[int] = None,
) -> float:
    """Yield of a row-redundancy-only repair under the Eq. 4 failure-count law.

    A die is repairable when its faults fall into at most ``spare_rows``
    distinct rows.  For the sparse-fault regime (faults far fewer than rows)
    distinct-row collisions are rare, so the dominant term is simply
    ``Pr(N <= spare_rows)``; this function uses that bound, which is exact for
    ``N <= spare_rows`` and conservative above it.
    """
    # Imported here: the failure-count law lives a layer above this module
    # (and the scenarios package between them would otherwise make the
    # module-level import circular).
    from repro.faultmodel.montecarlo import failure_count_pmf

    if not 0.0 <= p_cell <= 1.0:
        raise ValueError("p_cell must be a probability")
    if spare_rows < 0:
        raise ValueError("spare_rows must be non-negative")
    total_cells = organization.total_cells
    if max_failures is None:
        max_failures = spare_rows
    max_failures = min(max_failures, spare_rows)
    total = sum(
        failure_count_pmf(total_cells, p_cell, n)
        for n in range(0, max_failures + 1)
    )
    # Summing many pmf terms can overshoot 1.0 by a few ulps; clamp it.
    return float(min(total, 1.0))


def spares_for_yield_target(
    organization: MemoryOrganization,
    p_cell: float,
    yield_target: float = 0.99,
    max_spares: int = 4096,
) -> int:
    """Smallest number of spare rows reaching ``yield_target`` at ``p_cell``.

    This is the "redundancy cost" curve behind Section 2's motivation: at the
    paper's scaled-voltage operating points the required spare count explodes,
    which is why redundancy alone is not a viable answer to voltage scaling.
    Raises :class:`RuntimeError` if the target is unreachable within
    ``max_spares``.
    """
    if not 0.0 < yield_target < 1.0:
        raise ValueError("yield_target must be in (0, 1)")
    for spares in range(0, max_spares + 1):
        if repair_yield(organization, p_cell, spares) >= yield_target:
            return spares
    raise RuntimeError(
        f"yield target {yield_target} not reachable with {max_spares} spare rows"
    )
